//! The online scheduling protocol implied by the PRED criterion
//! (Lemmas 1–3, §3.5): the pure decision core used by the
//! `txproc-engine` scheduler.
//!
//! The protocol tracks, across all concurrent processes:
//!
//! * the executed operations and the conflict-dependency edges they induce,
//! * which operations are *stable* — they can never be compensated anymore
//!   because a later non-compensatable activity of the same process committed
//!   (the "quasi-commit" of §3.5 / Example 10),
//! * which non-compensatable activities executed under deferred commit
//!   (prepared at their subsystem, to be committed atomically via 2PC once
//!   the blocking predecessors terminate — Lemma 1.1 and §3.5).
//!
//! Scheduling obligations enforced:
//!
//! 1. **Serializability** — an activity whose conflict edges would close a
//!    cycle is rejected.
//! 2. **Lemma 1.2** — an activity conflicting with a *non-stable* operation
//!    of an active process must be compensatable; a non-compensatable
//!    activity in that situation executes with deferred commit (or waits,
//!    depending on [`DeferPolicy`]).
//! 3. **Lemma 1.1 / Definition 11.1** — a process may only commit after all
//!    processes it conflict-depends on terminated; deferred activity commits
//!    are released (atomically) at that point.
//! 4. **Cascading aborts** — when a process aborts, every dependent process
//!    that conflicts with a compensated operation, or with the aborting
//!    process's forward-recovery activities, is aborted too; victims are
//!    reported in reverse dependency order so their completions respect
//!    Lemmas 2 and 3.
//!
//! # Indexed hot path
//!
//! Decisions are answered from maintained indexes instead of rescanning the
//! full operation log:
//!
//! * [`Bucket`]s — an inverted index `base ServiceId → live operations`,
//!   split into per-process live counts and per-process sets of
//!   *non-stable* operation indices. Conflict queries touch only the
//!   (precomputed) conflicting services and the processes actually holding
//!   live operations there.
//! * `ops_by_process` / `op_index` — per-process and per-activity operation
//!   lists, so stabilization and compensation touch only a process's own
//!   records.
//! * `succ_adj` / `pred_adj` plus the transitive-closure bitsets `reach` /
//!   `rreach` over dense process indices — the `edges` relation with O(1)
//!   reachability, maintained incrementally on edge insertion (the same
//!   ancestor×descendant union used by `pred_incremental`).
//!
//! Every decision method retains the original scan formulation as a
//! `scan_*` differential oracle; in debug builds each indexed answer is
//! `debug_assert!`-checked against it bit-for-bit.

use crate::ids::{GlobalActivityId, ProcessId, ServiceId};
use crate::spec::Spec;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// How the scheduler handles a non-compensatable activity that conflicts
/// with an active predecessor (Lemma 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeferPolicy {
    /// Execute the activity but defer its subsystem commit via 2PC (§3.5).
    PrepareAndDefer,
    /// Do not execute the activity until the predecessors terminated.
    DeferExecution,
}

/// Scheduling decision for a requested activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Execute and commit at the subsystem immediately.
    Allow,
    /// Execute, but keep the subsystem transaction prepared; the commit is
    /// released when the listed processes terminate (Lemma 1.1).
    AllowDeferred {
        /// Active processes whose termination releases the commit.
        blockers: Vec<ProcessId>,
    },
    /// Do not execute yet; retry after the listed processes terminate.
    Wait {
        /// Active processes blocking execution.
        blockers: Vec<ProcessId>,
    },
    /// Executing now would close a serializability cycle; the process should
    /// abort (or the request must be abandoned).
    Reject {
        /// A process on the offending cycle.
        conflicting: ProcessId,
    },
}

/// Lifecycle of a process as seen by the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtStatus {
    /// Executing (possibly running its completion).
    Active,
    /// Terminated with commit.
    Committed,
    /// Terminated by abort (completion fully executed).
    Aborted,
}

/// One executed operation as tracked by the protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ExecRecord {
    gid: GlobalActivityId,
    /// Base service (perfect commutativity).
    service: ServiceId,
    /// Whether a compensating activity has undone this operation.
    compensated: bool,
    /// Whether the operation can never be compensated anymore.
    stable: bool,
    /// Whether the subsystem commit is still deferred (prepared).
    deferred: bool,
    /// Whether the service is compensatable (base termination).
    compensatable: bool,
}

/// Gate decision for a completion activity (§3.5: "the completed process
/// schedule has always to be considered"). Compensations must run in reverse
/// order of their conflicting originals (Lemma 2) and before conflicting
/// forward-recovery activities (Lemma 3); conflicting live operations of
/// other processes either block the completion step or force a cascade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionGate {
    /// The completion activity may execute now.
    Ready,
    /// Wait until the listed (aborting) processes compensated their
    /// conflicting operations.
    WaitFor(Vec<ProcessId>),
    /// The listed active processes hold conflicting operations that would
    /// make the completion irreducible; they must be cascade-aborted first.
    Cascade(Vec<ProcessId>),
}

/// Growable bitset over dense process indices (reachability closure rows).
#[derive(Debug, Clone, Default)]
struct PidSet {
    words: Vec<u64>,
}

impl PidSet {
    fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    fn insert(&mut self, i: usize) {
        let w = i / 64;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    fn union_with(&mut self, other: &PidSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Inverted index entry for one base service: which processes hold live
/// (non-compensated) operations of it, and which of those operations are
/// still non-stable (compensatable in principle).
#[derive(Debug, Clone, Default)]
struct Bucket {
    /// Live operation count per process (entries are strictly positive).
    live: BTreeMap<ProcessId, u32>,
    /// Indices (into `ops`) of live non-stable operations, per process
    /// (entries are non-empty).
    nonstable: BTreeMap<ProcessId, BTreeSet<usize>>,
}

/// The protocol state machine (single-threaded core; the engine wraps it in
/// a lock).
#[derive(Debug, Clone)]
pub struct Protocol<'a> {
    spec: &'a Spec,
    policy: DeferPolicy,
    ops: Vec<ExecRecord>,
    /// Conflict-dependency edges `P_i → P_j`.
    edges: BTreeSet<(ProcessId, ProcessId)>,
    status: BTreeMap<ProcessId, ProtStatus>,
    /// Per process: activities executed under deferred commit.
    deferred: BTreeMap<ProcessId, Vec<GlobalActivityId>>,
    /// Processes currently executing their completion (abort in progress).
    aborting: BTreeSet<ProcessId>,
    // ---- maintained indexes (derived from the state above) ----
    /// Per service: the base services it conflicts with. Filled lazily on
    /// first touch and memoised — a process footprint visits a handful of
    /// services, so eager O(catalog²) precomputation is wasted work (and
    /// memory) at the large catalogs the open-arrival sweeps use.
    conflict_adj: RefCell<BTreeMap<u32, Arc<[ServiceId]>>>,
    /// Per base service: live conflicting operations (inverted index).
    /// Sparse: only services that ever held a live operation have an entry.
    buckets: BTreeMap<ServiceId, Bucket>,
    /// Per process: indices of its operation records, in execution order.
    ops_by_process: BTreeMap<ProcessId, Vec<usize>>,
    /// Per activity: indices of its operation records, in execution order
    /// (retries can record the same activity more than once).
    op_index: BTreeMap<GlobalActivityId, Vec<usize>>,
    /// Dense index per process participating in `edges`.
    dense: BTreeMap<ProcessId, u32>,
    /// Direct successors / predecessors in the `edges` relation.
    succ_adj: Vec<BTreeSet<ProcessId>>,
    pred_adj: Vec<BTreeSet<ProcessId>>,
    /// Strict descendants / ancestors (transitive closure over `edges`).
    reach: Vec<PidSet>,
    rreach: Vec<PidSet>,
}

impl<'a> Protocol<'a> {
    /// Creates an empty protocol state.
    pub fn new(spec: &'a Spec, policy: DeferPolicy) -> Self {
        Self {
            spec,
            policy,
            ops: Vec::new(),
            edges: BTreeSet::new(),
            status: BTreeMap::new(),
            deferred: BTreeMap::new(),
            aborting: BTreeSet::new(),
            conflict_adj: RefCell::new(BTreeMap::new()),
            buckets: BTreeMap::new(),
            ops_by_process: BTreeMap::new(),
            op_index: BTreeMap::new(),
            dense: BTreeMap::new(),
            succ_adj: Vec::new(),
            pred_adj: Vec::new(),
            reach: Vec::new(),
            rreach: Vec::new(),
        }
    }

    /// Registers a newly admitted process.
    pub fn register(&mut self, pid: ProcessId) {
        self.status.insert(pid, ProtStatus::Active);
    }

    /// Status of a process (unknown processes are reported active).
    pub fn status(&self, pid: ProcessId) -> ProtStatus {
        self.status.get(&pid).copied().unwrap_or(ProtStatus::Active)
    }

    /// Current dependency edges.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.edges.iter().copied()
    }

    /// Deferred (prepared) activities of a process.
    pub fn deferred_of(&self, pid: ProcessId) -> &[GlobalActivityId] {
        self.deferred.get(&pid).map(Vec::as_slice).unwrap_or(&[])
    }

    fn is_active(&self, pid: ProcessId) -> bool {
        self.status(pid) == ProtStatus::Active
    }

    // ---- index maintenance ----------------------------------------------

    /// Conflicting base services of `service`, computed on first touch and
    /// memoised. Only base services appear as record services / bucket
    /// keys, so the row is restricted to them.
    fn conflict_row(&self, service: ServiceId) -> Arc<[ServiceId]> {
        if let Some(row) = self.conflict_adj.borrow().get(&service.0) {
            return Arc::clone(row);
        }
        let oracle = self.spec.oracle();
        let n = self.spec.catalog.len();
        let mut adj = Vec::new();
        for t in 0..n {
            let tid = ServiceId(t as u32);
            if self.spec.catalog.base(tid) == tid && oracle.conflict(service, tid) {
                adj.push(tid);
            }
        }
        let row: Arc<[ServiceId]> = adj.into();
        self.conflict_adj
            .borrow_mut()
            .insert(service.0, Arc::clone(&row));
        row
    }

    /// Dense index of a process, allocated on first use.
    fn densify(&mut self, pid: ProcessId) -> usize {
        if let Some(&d) = self.dense.get(&pid) {
            return d as usize;
        }
        let d = self.succ_adj.len();
        self.dense.insert(pid, d as u32);
        self.succ_adj.push(BTreeSet::new());
        self.pred_adj.push(BTreeSet::new());
        self.reach.push(PidSet::default());
        self.rreach.push(PidSet::default());
        d
    }

    /// Inserts edge `a → b` and updates adjacency + closure incrementally:
    /// every ancestor of `a` (plus `a`) reaches every descendant of `b`
    /// (plus `b`). Returns whether the edge was new (for decision tracing).
    fn insert_edge(&mut self, a: ProcessId, b: ProcessId) -> bool {
        if !self.edges.insert((a, b)) {
            return false;
        }
        let da = self.densify(a);
        let db = self.densify(b);
        self.succ_adj[da].insert(b);
        self.pred_adj[db].insert(a);
        if self.reach[da].contains(db) {
            return true;
        }
        let mut desc = self.reach[db].clone();
        desc.insert(db);
        let mut anc = self.rreach[da].clone();
        anc.insert(da);
        for x in anc.iter() {
            self.reach[x].union_with(&desc);
        }
        for y in desc.iter() {
            self.rreach[y].union_with(&anc);
        }
        true
    }

    /// Updates the `compensated`/`stable` flags of one record, keeping the
    /// service buckets in sync (the single mutation point for both flags).
    fn apply_record_flags(&mut self, idx: usize, compensated: bool, stable: bool) {
        let (old_c, old_s, svc, pid) = {
            let r = &self.ops[idx];
            (r.compensated, r.stable, r.service, r.gid.process)
        };
        if old_c == compensated && old_s == stable {
            return;
        }
        let bucket = self.buckets.entry(svc).or_default();
        let (was_live, is_live) = (!old_c, !compensated);
        if was_live && !is_live {
            let n = bucket.live.get_mut(&pid).expect("live count tracked");
            *n -= 1;
            if *n == 0 {
                bucket.live.remove(&pid);
            }
        } else if !was_live && is_live {
            *bucket.live.entry(pid).or_insert(0) += 1;
        }
        let (was_ns, is_ns) = (!old_c && !old_s, !compensated && !stable);
        if was_ns && !is_ns {
            let set = bucket.nonstable.get_mut(&pid).expect("nonstable tracked");
            set.remove(&idx);
            if set.is_empty() {
                bucket.nonstable.remove(&pid);
            }
        } else if !was_ns && is_ns {
            bucket.nonstable.entry(pid).or_default().insert(idx);
        }
        let r = &mut self.ops[idx];
        r.compensated = compensated;
        r.stable = stable;
    }

    fn push_record(&mut self, rec: ExecRecord) {
        let idx = self.ops.len();
        let pid = rec.gid.process;
        self.ops_by_process.entry(pid).or_default().push(idx);
        self.op_index.entry(rec.gid).or_default().push(idx);
        if !rec.compensated {
            let bucket = self.buckets.entry(rec.service).or_default();
            *bucket.live.entry(pid).or_insert(0) += 1;
            if !rec.stable {
                bucket.nonstable.entry(pid).or_default().insert(idx);
            }
        }
        self.ops.push(rec);
    }

    /// Rebuild-and-compare consistency check of every maintained index
    /// (test support; called explicitly by the differential tests).
    #[doc(hidden)]
    pub fn check_index_invariants(&self) {
        let mut services: BTreeSet<ServiceId> = self.buckets.keys().copied().collect();
        services.extend(self.ops.iter().map(|r| r.service));
        for s in services {
            let mut live: BTreeMap<ProcessId, u32> = BTreeMap::new();
            let mut nonstable: BTreeMap<ProcessId, BTreeSet<usize>> = BTreeMap::new();
            for (i, r) in self.ops.iter().enumerate() {
                if r.service != s || r.compensated {
                    continue;
                }
                *live.entry(r.gid.process).or_insert(0) += 1;
                if !r.stable {
                    nonstable.entry(r.gid.process).or_default().insert(i);
                }
            }
            let bucket = self.buckets.get(&s).cloned().unwrap_or_default();
            assert_eq!(bucket.live, live, "live index diverged for service {s}");
            assert_eq!(
                bucket.nonstable, nonstable,
                "nonstable index diverged for service {s}"
            );
        }
        for (&pid, idxs) in &self.ops_by_process {
            let expect: Vec<usize> = (0..self.ops.len())
                .filter(|&i| self.ops[i].gid.process == pid)
                .collect();
            assert_eq!(idxs, &expect, "ops_by_process diverged for {pid}");
        }
        for (&(a, b), _) in self.edges.iter().zip(self.edges.iter()) {
            assert!(self.reaches(a, b), "closure misses edge {a}→{b}");
        }
        for (&pid, &d) in &self.dense {
            for q in self.reach[d as usize].iter() {
                let to = self.pids_of_dense(q);
                assert!(
                    self.scan_reaches(pid, to),
                    "closure claims {pid}→{to} but edges do not"
                );
            }
        }
    }

    fn pids_of_dense(&self, d: usize) -> ProcessId {
        *self
            .dense
            .iter()
            .find(|&(_, &v)| v as usize == d)
            .expect("dense index allocated")
            .0
    }

    // ---- reachability ---------------------------------------------------

    /// Whether `from` can reach `to` through dependency edges (O(1) via the
    /// maintained closure).
    fn reaches(&self, from: ProcessId, to: ProcessId) -> bool {
        if from == to {
            return true;
        }
        let answer = match (self.dense.get(&from), self.dense.get(&to)) {
            (Some(&df), Some(&dt)) => self.reach[df as usize].contains(dt as usize),
            _ => false,
        };
        debug_assert_eq!(
            answer,
            self.scan_reaches(from, to),
            "closure/scan divergence for {from}→{to}"
        );
        answer
    }

    /// Scan oracle for [`reaches`](Self::reaches): DFS over the raw edge
    /// set.
    fn scan_reaches(&self, from: ProcessId, to: ProcessId) -> bool {
        if from == to {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            for &(a, b) in &self.edges {
                if a == p {
                    if b == to {
                        return true;
                    }
                    stack.push(b);
                }
            }
        }
        false
    }

    // ---- conflicting predecessors ---------------------------------------

    /// Processes (≠ `pid`) holding a live conflicting operation against
    /// `service`, with the stability of *all* their conflicting operations
    /// (`true` iff none is still compensatable). Answered from the service
    /// buckets: only conflicting services and the processes holding live
    /// operations there are touched.
    fn conflicting_predecessors(
        &self,
        pid: ProcessId,
        service: ServiceId,
    ) -> BTreeMap<ProcessId, bool> {
        let base = self.spec.catalog.base(service);
        let mut preds: BTreeMap<ProcessId, bool> = BTreeMap::new();
        for &s in self.conflict_row(base).iter() {
            let Some(bucket) = self.buckets.get(&s) else {
                continue;
            };
            for &p in bucket.live.keys() {
                if p == pid {
                    continue;
                }
                let all_stable = !bucket.nonstable.contains_key(&p);
                let entry = preds.entry(p).or_insert(true);
                *entry = *entry && all_stable;
            }
        }
        debug_assert_eq!(
            preds,
            self.scan_conflicting_predecessors(pid, service),
            "conflicting_predecessors index/scan divergence"
        );
        preds
    }

    /// Scan oracle for
    /// [`conflicting_predecessors`](Self::conflicting_predecessors).
    fn scan_conflicting_predecessors(
        &self,
        pid: ProcessId,
        service: ServiceId,
    ) -> BTreeMap<ProcessId, bool> {
        let oracle = self.spec.oracle();
        let mut preds: BTreeMap<ProcessId, bool> = BTreeMap::new();
        for rec in &self.ops {
            if rec.gid.process == pid || rec.compensated {
                continue;
            }
            if oracle.conflict(rec.service, service) {
                let entry = preds.entry(rec.gid.process).or_insert(true);
                *entry = *entry && rec.stable;
            }
        }
        preds
    }

    // ---- admission ------------------------------------------------------

    /// Decides whether process `pid` may now execute the activity `gid`
    /// invoking `service`.
    pub fn request(&self, pid: ProcessId, service: ServiceId) -> Admission {
        let preds = self.conflicting_predecessors(pid, service);
        // Serializability: adding P_i → P_j must not close a cycle.
        for &pi in preds.keys() {
            if !self.edges.contains(&(pi, pid)) && self.reaches(pid, pi) {
                let answer = Admission::Reject { conflicting: pi };
                debug_assert_eq!(answer, self.scan_request(pid, service));
                return answer;
            }
        }
        // A conflict with a non-stable operation of an *aborting* process
        // would land between that operation and its imminent compensation —
        // the Example 8 cycle. Wait until the compensation ran.
        let base = self.spec.catalog.base(service);
        let mut due_compensation: BTreeSet<ProcessId> = BTreeSet::new();
        for &s in self.conflict_row(base).iter() {
            let Some(bucket) = self.buckets.get(&s) else {
                continue;
            };
            for &p in bucket.nonstable.keys() {
                if p != pid && self.aborting.contains(&p) {
                    due_compensation.insert(p);
                }
            }
        }
        if !due_compensation.is_empty() {
            let answer = Admission::Wait {
                blockers: due_compensation.into_iter().collect(),
            };
            debug_assert_eq!(answer, self.scan_request(pid, service));
            return answer;
        }
        let compensatable = self.spec.catalog.termination(base).is_compensatable();
        if compensatable {
            debug_assert_eq!(Admission::Allow, self.scan_request(pid, service));
            return Admission::Allow;
        }
        // Lemma 1.1: *every* non-compensatable activity of P_j may only
        // commit after the commit of each active P_i that P_j conflict-
        // depends on — whether the dependency comes from this activity or an
        // earlier one. Blockers include quasi-committed (stable) conflicts
        // too: Lemma 1.1 defers on C_i, not on stability.
        let mut blockers: BTreeSet<ProcessId> = preds
            .keys()
            .copied()
            .filter(|&pi| self.is_active(pi))
            .collect();
        if let Some(&d) = self.dense.get(&pid) {
            for &pi in &self.pred_adj[d as usize] {
                if self.is_active(pi) {
                    blockers.insert(pi);
                }
            }
        }
        let blockers: Vec<ProcessId> = blockers.into_iter().collect();
        let answer = if blockers.is_empty() {
            Admission::Allow
        } else {
            match self.policy {
                DeferPolicy::PrepareAndDefer => Admission::AllowDeferred { blockers },
                DeferPolicy::DeferExecution => Admission::Wait { blockers },
            }
        };
        debug_assert_eq!(answer, self.scan_request(pid, service));
        answer
    }

    /// Scan oracle for [`request`](Self::request): the original O(total ops)
    /// formulation, retained for differential checking and as the
    /// `pred-scan` baseline policy.
    pub fn scan_request(&self, pid: ProcessId, service: ServiceId) -> Admission {
        let preds = self.scan_conflicting_predecessors(pid, service);
        for &pi in preds.keys() {
            if !self.edges.contains(&(pi, pid)) && self.scan_reaches(pid, pi) {
                return Admission::Reject { conflicting: pi };
            }
        }
        let oracle = self.spec.oracle();
        let due_compensation: Vec<ProcessId> = self
            .ops
            .iter()
            .filter(|r| {
                r.gid.process != pid
                    && !r.compensated
                    && !r.stable
                    && self.aborting.contains(&r.gid.process)
                    && oracle.conflict(r.service, self.spec.catalog.base(service))
            })
            .map(|r| r.gid.process)
            .collect();
        if !due_compensation.is_empty() {
            let mut blockers = due_compensation;
            blockers.sort();
            blockers.dedup();
            return Admission::Wait { blockers };
        }
        let compensatable = self
            .spec
            .catalog
            .termination(self.spec.catalog.base(service))
            .is_compensatable();
        if compensatable {
            return Admission::Allow;
        }
        let mut blockers: BTreeSet<ProcessId> = preds
            .keys()
            .copied()
            .filter(|&pi| self.is_active(pi))
            .collect();
        for &(pi, pj) in &self.edges {
            if pj == pid && self.is_active(pi) {
                blockers.insert(pi);
            }
        }
        let blockers: Vec<ProcessId> = blockers.into_iter().collect();
        if blockers.is_empty() {
            return Admission::Allow;
        }
        match self.policy {
            DeferPolicy::PrepareAndDefer => Admission::AllowDeferred { blockers },
            DeferPolicy::DeferExecution => Admission::Wait { blockers },
        }
    }

    // ---- recording ------------------------------------------------------

    /// Records an executed forward activity. `deferred` mirrors the
    /// [`Admission::AllowDeferred`] decision. Returns the serialization
    /// edges `(predecessor, pid)` newly added by this execution, so the
    /// driver can attach them to its decision trace.
    pub fn record_executed(
        &mut self,
        gid: GlobalActivityId,
        deferred: bool,
    ) -> Vec<(ProcessId, ProcessId)> {
        let pid = gid.process;
        self.status.entry(pid).or_insert(ProtStatus::Active);
        let service = self
            .spec
            .catalog
            .base(self.spec.service_of(gid).expect("validated activity"));
        let compensatable = self.spec.catalog.termination(service).is_compensatable();
        // Dependency edges from every conflicting predecessor.
        let preds = self.conflicting_predecessors(pid, service);
        let mut edges_added = Vec::new();
        for &pi in preds.keys() {
            if self.insert_edge(pi, pid) {
                edges_added.push((pi, pid));
            }
        }
        // A committed non-compensatable activity stabilizes every earlier
        // operation of the same process (quasi-commit, §3.5).
        let stabilizes = !compensatable && !deferred;
        if stabilizes {
            if let Some(idxs) = self.ops_by_process.get(&pid) {
                for idx in idxs.clone() {
                    let compensated = self.ops[idx].compensated;
                    self.apply_record_flags(idx, compensated, true);
                }
            }
        }
        self.push_record(ExecRecord {
            gid,
            service,
            compensated: false,
            stable: stabilizes,
            deferred,
            compensatable,
        });
        if deferred {
            self.deferred.entry(pid).or_default().push(gid);
        }
        edges_added
    }

    /// Records the compensation of a previously executed activity.
    pub fn record_compensated(&mut self, gid: GlobalActivityId) {
        let idx = self
            .op_index
            .get(&gid)
            .and_then(|idxs| idxs.iter().rev().find(|&&i| !self.ops[i].compensated))
            .copied();
        if let Some(idx) = idx {
            debug_assert!(
                !self.ops[idx].stable,
                "stable operations are never compensated"
            );
            let stable = self.ops[idx].stable;
            self.apply_record_flags(idx, true, stable);
        }
    }

    // ---- commit ---------------------------------------------------------

    /// Whether `pid` may commit: all processes it depends on have terminated
    /// (Definition 11.1) and it has no deferred activities left unreleased.
    pub fn can_commit(&self, pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        let blockers: Vec<ProcessId> = match self.dense.get(&pid) {
            Some(&d) => self.pred_adj[d as usize]
                .iter()
                .copied()
                .filter(|&pi| self.is_active(pi))
                .collect(),
            None => Vec::new(),
        };
        let answer = if blockers.is_empty() {
            Ok(())
        } else {
            Err(blockers)
        };
        debug_assert_eq!(answer, self.scan_can_commit(pid));
        answer
    }

    /// Scan oracle for [`can_commit`](Self::can_commit).
    pub fn scan_can_commit(&self, pid: ProcessId) -> Result<(), Vec<ProcessId>> {
        let blockers: Vec<ProcessId> = self
            .edges
            .iter()
            .filter(|&&(pi, pj)| pj == pid && self.is_active(pi))
            .map(|&(pi, _)| pi)
            .collect();
        if blockers.is_empty() {
            Ok(())
        } else {
            Err(blockers)
        }
    }

    /// Records the commit of a process; returns, per dependent process, the
    /// deferred activities whose subsystem commits may now be released
    /// **atomically** (2PC) because their last active blocker terminated.
    pub fn record_process_commit(
        &mut self,
        pid: ProcessId,
    ) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.status.insert(pid, ProtStatus::Committed);
        // Every operation of a committed process is final.
        if let Some(idxs) = self.ops_by_process.get(&pid) {
            for idx in idxs.clone() {
                let compensated = self.ops[idx].compensated;
                self.apply_record_flags(idx, compensated, !compensated);
            }
        }
        self.collect_releasable()
    }

    /// Releasable deferred commits: processes whose active blockers are gone.
    fn collect_releasable(&mut self) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        debug_assert_eq!(self.releasable_now(), self.scan_releasable_now());
        let ready = self.releasable_now();
        let mut out = Vec::new();
        for pj in ready {
            let acts = self.deferred.remove(&pj).unwrap_or_default();
            if !acts.is_empty() {
                out.push((pj, acts));
            }
        }
        out
    }

    /// Processes with deferred activities whose active blockers are gone
    /// (indexed answer, no mutation).
    fn releasable_now(&self) -> Vec<ProcessId> {
        self.deferred
            .keys()
            .copied()
            .filter(|&pj| {
                if !self.is_active(pj) {
                    return false;
                }
                match self.dense.get(&pj) {
                    Some(&d) => !self.pred_adj[d as usize]
                        .iter()
                        .any(|&pi| self.is_active(pi)),
                    None => true,
                }
            })
            .collect()
    }

    /// Scan oracle for [`releasable_now`](Self::releasable_now).
    fn scan_releasable_now(&self) -> Vec<ProcessId> {
        self.deferred
            .keys()
            .copied()
            .filter(|&pj| {
                self.is_active(pj)
                    && !self
                        .edges
                        .iter()
                        .any(|&(pi, p)| p == pj && self.is_active(pi))
            })
            .collect()
    }

    /// Records that a deferred (prepared) activity was aborted before its
    /// commit was released: it leaves no effects and stops participating in
    /// conflicts.
    pub fn record_prepared_aborted(&mut self, gid: GlobalActivityId) {
        if let Some(idxs) = self.op_index.get(&gid) {
            for idx in idxs.clone() {
                if self.ops[idx].deferred {
                    let stable = self.ops[idx].stable;
                    self.apply_record_flags(idx, true, stable);
                    self.ops[idx].deferred = false;
                }
            }
        }
        if let Some(list) = self.deferred.get_mut(&gid.process) {
            list.retain(|&g| g != gid);
            if list.is_empty() {
                self.deferred.remove(&gid.process);
            }
        }
    }

    /// Marks a deferred activity as released (subsystem commit executed).
    /// Stabilizes the process's earlier operations like a direct commit.
    pub fn record_deferred_released(&mut self, gid: GlobalActivityId) {
        let pid = gid.process;
        let last = self.op_index.get(&gid).and_then(|idxs| {
            for &idx in idxs {
                self.ops[idx].deferred = false;
            }
            idxs.last().copied()
        });
        if let Some(last) = last {
            // Stabilize everything up to and including the released op.
            let idxs = self.ops_by_process.get(&pid).cloned().unwrap_or_default();
            for idx in idxs {
                if idx > last {
                    break;
                }
                if !self.ops[idx].compensated {
                    self.apply_record_flags(idx, false, true);
                }
            }
        }
        if let Some(list) = self.deferred.get_mut(&pid) {
            list.retain(|&g| g != gid);
            if list.is_empty() {
                self.deferred.remove(&pid);
            }
        }
    }

    // ---- abort ----------------------------------------------------------

    /// Plans a process abort: which dependent processes must cascade.
    ///
    /// `compensating` are the operations the aborting process will
    /// compensate; `forward_services` the (base) services of its forward
    /// recovery path. A dependent `P_j` cascades when it conflicts with a
    /// compensated operation (the Example 8 cycle) or with a forward
    /// recovery activity while `P_i → P_j` exists (Theorem 1, cases 1/3).
    /// Victims are returned in reverse dependency order (dependents first)
    /// so that completions respect Lemma 2.
    pub fn plan_abort(
        &self,
        pid: ProcessId,
        compensating: &[GlobalActivityId],
        forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        let comp_services = self.comp_services(compensating);
        let victims = self.plan_abort_victims(pid, &comp_services, forward_services);
        debug_assert_eq!(
            victims,
            self.scan_plan_abort_victims(pid, &comp_services, forward_services),
            "plan_abort victim set index/scan divergence"
        );
        self.order_victims(victims)
    }

    /// Scan oracle for [`plan_abort`](Self::plan_abort): victim discovery by
    /// edge-set and operation-log scans, identical ordering.
    pub fn scan_plan_abort(
        &self,
        pid: ProcessId,
        compensating: &[GlobalActivityId],
        forward_services: &[ServiceId],
    ) -> Vec<ProcessId> {
        let comp_services = self.comp_services(compensating);
        let victims = self.scan_plan_abort_victims(pid, &comp_services, forward_services);
        self.order_victims(victims)
    }

    fn comp_services(&self, compensating: &[GlobalActivityId]) -> Vec<ServiceId> {
        compensating
            .iter()
            .map(|g| {
                self.spec
                    .catalog
                    .base(self.spec.service_of(*g).expect("validated"))
            })
            .collect()
    }

    /// Victim discovery over the adjacency index: walk direct successors of
    /// the aborting process (then of each victim), pulling in any active
    /// dependent holding a live operation that conflicts with what the
    /// frontier process is about to compensate or forward-execute.
    fn plan_abort_victims(
        &self,
        pid: ProcessId,
        comp_services: &[ServiceId],
        forward_services: &[ServiceId],
    ) -> BTreeSet<ProcessId> {
        let oracle = self.spec.oracle();
        let mut victims: BTreeSet<ProcessId> = BTreeSet::new();
        let mut frontier = vec![(pid, comp_services.to_vec(), forward_services.to_vec())];
        while let Some((pi, comps, fwds)) = frontier.pop() {
            let Some(&d) = self.dense.get(&pi) else {
                continue;
            };
            for &b in &self.succ_adj[d as usize] {
                if !self.is_active(b) || b == pid || victims.contains(&b) {
                    continue;
                }
                let Some(idxs) = self.ops_by_process.get(&b) else {
                    continue;
                };
                let pb_conflicts = idxs.iter().any(|&i| {
                    let r = &self.ops[i];
                    !r.compensated
                        && comps
                            .iter()
                            .chain(fwds.iter())
                            .any(|&s| oracle.conflict(r.service, s))
                });
                if pb_conflicts {
                    victims.insert(b);
                    // The victim's own completion cascades further; its
                    // compensations cover its non-stable operations.
                    let victim_comps: Vec<ServiceId> = idxs
                        .iter()
                        .map(|&i| &self.ops[i])
                        .filter(|r| !r.compensated && !r.stable)
                        .map(|r| r.service)
                        .collect();
                    frontier.push((b, victim_comps, Vec::new()));
                }
            }
        }
        victims
    }

    /// Scan-based victim discovery (edge-set scans per frontier element).
    fn scan_plan_abort_victims(
        &self,
        pid: ProcessId,
        comp_services: &[ServiceId],
        forward_services: &[ServiceId],
    ) -> BTreeSet<ProcessId> {
        let oracle = self.spec.oracle();
        let mut victims: BTreeSet<ProcessId> = BTreeSet::new();
        let mut frontier = vec![(pid, comp_services.to_vec(), forward_services.to_vec())];
        while let Some((pi, comps, fwds)) = frontier.pop() {
            for &(a, b) in &self.edges {
                if a != pi || !self.is_active(b) || b == pid || victims.contains(&b) {
                    continue;
                }
                let pb_conflicts = self.ops.iter().any(|r| {
                    r.gid.process == b
                        && !r.compensated
                        && comps
                            .iter()
                            .chain(fwds.iter())
                            .any(|&s| oracle.conflict(r.service, s))
                });
                if pb_conflicts {
                    victims.insert(b);
                    let victim_comps: Vec<ServiceId> = self
                        .ops
                        .iter()
                        .filter(|r| r.gid.process == b && !r.compensated && !r.stable)
                        .map(|r| r.service)
                        .collect();
                    frontier.push((b, victim_comps, Vec::new()));
                }
            }
        }
        victims
    }

    /// Reverse dependency order: dependents (later in the serialization)
    /// first. Deterministic topological emission — repeatedly emit the
    /// highest-numbered victim whose remaining dependents are all emitted —
    /// rather than a comparator sort (reachability is not a total order, so
    /// a comparator-based sort is not well-defined over it).
    fn order_victims(&self, victims: BTreeSet<ProcessId>) -> Vec<ProcessId> {
        let mut remaining: Vec<ProcessId> = victims.into_iter().collect();
        let mut ordered = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let i = remaining
                .iter()
                .rposition(|&v| !remaining.iter().any(|&u| u != v && self.reaches(v, u)))
                // Victims on a residual cycle cannot exist under the
                // serializability invariant; emit highest-numbered first.
                .unwrap_or(remaining.len() - 1);
            ordered.push(remaining.remove(i));
        }
        ordered
    }

    /// Debug dump of the tracked operation records.
    pub fn debug_ops(&self) -> String {
        let mut out = String::new();
        for r in &self.ops {
            out.push_str(&format!(
                "{} svc={} comp'd={} stable={} deferred={}\n",
                r.gid, r.service, r.compensated, r.stable, r.deferred
            ));
        }
        out
    }

    /// Marks a process as aborting: its completion is about to execute.
    /// Until [`record_process_abort`](Self::record_process_abort), requests
    /// conflicting with its to-be-compensated operations wait.
    pub fn mark_aborting(&mut self, pid: ProcessId) {
        self.aborting.insert(pid);
    }

    /// Whether a process is currently aborting.
    pub fn is_aborting(&self, pid: ProcessId) -> bool {
        self.aborting.contains(&pid)
    }

    // ---- completion gates -----------------------------------------------

    /// Gate for executing the compensation of `gid` (Lemma 2 and the
    /// Example 8 cycle): every conflicting operation executed *after* `gid`
    /// must be compensated first (if its owner is aborting) or its owner
    /// must cascade (if still running).
    pub fn compensation_gate(&self, gid: GlobalActivityId) -> CompletionGate {
        let pos = self
            .op_index
            .get(&gid)
            .and_then(|idxs| idxs.iter().find(|&&i| !self.ops[i].compensated))
            .copied();
        let Some(pos) = pos else {
            debug_assert_eq!(CompletionGate::Ready, self.scan_compensation_gate(gid));
            return CompletionGate::Ready;
        };
        let service = self.ops[pos].service;
        let mut wait: BTreeSet<ProcessId> = BTreeSet::new();
        let mut cascade: BTreeSet<ProcessId> = BTreeSet::new();
        for &s in self.conflict_row(service).iter() {
            let Some(bucket) = self.buckets.get(&s) else {
                continue;
            };
            for (&p, set) in &bucket.nonstable {
                // Only operations strictly *after* the compensated one gate
                // its compensation; `set` is ordered, so the max index
                // decides.
                if p == gid.process || set.last().is_none_or(|&max| max <= pos) {
                    continue;
                }
                match self.status(p) {
                    ProtStatus::Active if self.aborting.contains(&p) => {
                        wait.insert(p);
                    }
                    ProtStatus::Active => {
                        cascade.insert(p);
                    }
                    _ => {}
                }
            }
        }
        let answer = Self::gate(wait.into_iter().collect(), cascade.into_iter().collect());
        debug_assert_eq!(answer, self.scan_compensation_gate(gid));
        answer
    }

    /// Scan oracle for [`compensation_gate`](Self::compensation_gate).
    pub fn scan_compensation_gate(&self, gid: GlobalActivityId) -> CompletionGate {
        let oracle = self.spec.oracle();
        let Some(pos) = self.ops.iter().position(|r| r.gid == gid && !r.compensated) else {
            return CompletionGate::Ready;
        };
        let service = self.ops[pos].service;
        let mut wait = Vec::new();
        let mut cascade = Vec::new();
        for r in &self.ops[pos + 1..] {
            if r.gid.process == gid.process
                || r.compensated
                || r.stable
                || !oracle.conflict(r.service, service)
            {
                continue;
            }
            match self.status(r.gid.process) {
                ProtStatus::Active if self.aborting.contains(&r.gid.process) => {
                    wait.push(r.gid.process)
                }
                ProtStatus::Active => cascade.push(r.gid.process),
                _ => {}
            }
        }
        Self::gate(wait, cascade)
    }

    /// Gate for executing a forward-recovery activity of aborting process
    /// `pid` invoking `service` (Lemma 3 and §3.5's new-conflict hazard):
    /// conflicting live non-stable operations of other processes must be
    /// compensated first.
    pub fn forward_gate(&self, pid: ProcessId, service: ServiceId) -> CompletionGate {
        let base = self.spec.catalog.base(service);
        let mut wait: BTreeSet<ProcessId> = BTreeSet::new();
        let mut cascade: BTreeSet<ProcessId> = BTreeSet::new();
        for &s in self.conflict_row(base).iter() {
            let Some(bucket) = self.buckets.get(&s) else {
                continue;
            };
            for &p in bucket.nonstable.keys() {
                if p == pid {
                    continue;
                }
                match self.status(p) {
                    ProtStatus::Active if self.aborting.contains(&p) => {
                        wait.insert(p);
                    }
                    ProtStatus::Active => {
                        cascade.insert(p);
                    }
                    _ => {}
                }
            }
        }
        let answer = Self::gate(wait.into_iter().collect(), cascade.into_iter().collect());
        debug_assert_eq!(answer, self.scan_forward_gate(pid, service));
        answer
    }

    /// Scan oracle for [`forward_gate`](Self::forward_gate).
    pub fn scan_forward_gate(&self, pid: ProcessId, service: ServiceId) -> CompletionGate {
        let oracle = self.spec.oracle();
        let base = self.spec.catalog.base(service);
        let mut wait = Vec::new();
        let mut cascade = Vec::new();
        for r in &self.ops {
            if r.gid.process == pid
                || r.compensated
                || r.stable
                || !oracle.conflict(r.service, base)
            {
                continue;
            }
            match self.status(r.gid.process) {
                ProtStatus::Active if self.aborting.contains(&r.gid.process) => {
                    wait.push(r.gid.process)
                }
                ProtStatus::Active => cascade.push(r.gid.process),
                _ => {}
            }
        }
        Self::gate(wait, cascade)
    }

    fn gate(mut wait: Vec<ProcessId>, mut cascade: Vec<ProcessId>) -> CompletionGate {
        if !cascade.is_empty() {
            cascade.sort();
            cascade.dedup();
            CompletionGate::Cascade(cascade)
        } else if !wait.is_empty() {
            wait.sort();
            wait.dedup();
            CompletionGate::WaitFor(wait)
        } else {
            CompletionGate::Ready
        }
    }

    /// Records the completion of a process abort.
    pub fn record_process_abort(
        &mut self,
        pid: ProcessId,
    ) -> Vec<(ProcessId, Vec<GlobalActivityId>)> {
        self.status.insert(pid, ProtStatus::Aborted);
        self.aborting.remove(&pid);
        // Whatever effects the completed abort left behind (pre-boundary
        // operations and forward-recovery activities) are final.
        if let Some(idxs) = self.ops_by_process.get(&pid) {
            for idx in idxs.clone() {
                if !self.ops[idx].compensated {
                    self.apply_record_flags(idx, false, true);
                }
            }
        }
        // Drop its unreleased deferred activities (they abort at prepare).
        if let Some(acts) = self.deferred.remove(&pid) {
            for gid in acts {
                let idx = self
                    .op_index
                    .get(&gid)
                    .and_then(|idxs| idxs.first())
                    .copied();
                if let Some(idx) = idx {
                    let stable = self.ops[idx].stable;
                    // Prepared-then-aborted: no effect.
                    self.apply_record_flags(idx, true, stable);
                }
            }
        }
        self.collect_releasable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn svc(fx: &fixtures::PaperWorld, p: u32, k: u32) -> ServiceId {
        fx.spec.service_of(fx.a(p, k)).unwrap()
    }

    #[test]
    fn independent_activities_allowed() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        assert_eq!(prot.request(ProcessId(1), svc(&fx, 1, 1)), Admission::Allow);
        prot.record_executed(fx.a(1, 1), false);
        // a2_2 does not conflict with anything executed.
        assert_eq!(prot.request(ProcessId(2), svc(&fx, 2, 2)), Admission::Allow);
    }

    #[test]
    fn conflicting_compensatable_allowed_with_dependency() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        // a2_1 conflicts a1_1 but is compensatable: allowed (Lemma 1.2).
        assert_eq!(prot.request(ProcessId(2), svc(&fx, 2, 1)), Admission::Allow);
        prot.record_executed(fx.a(2, 1), false);
        assert!(prot.edges().any(|e| e == (ProcessId(1), ProcessId(2))));
        // P₂ may not commit before P₁ (Definition 11.1).
        assert_eq!(prot.can_commit(ProcessId(2)), Err(vec![ProcessId(1)]));
        assert!(prot.can_commit(ProcessId(1)).is_ok());
    }

    #[test]
    fn non_compensatable_defers_behind_active_predecessor() {
        // The Example 8 situation: P₂'s pivot a2_3 must not commit while P₁
        // (which P₂ conflict-depends on) is active.
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        match prot.request(ProcessId(2), svc(&fx, 2, 3)) {
            Admission::AllowDeferred { blockers } => assert_eq!(blockers, vec![ProcessId(1)]),
            other => panic!("expected AllowDeferred, got {other:?}"),
        }
        prot.record_executed(fx.a(2, 3), true);
        assert_eq!(prot.deferred_of(ProcessId(2)), &[fx.a(2, 3)]);
    }

    #[test]
    fn deferred_commit_released_on_predecessor_commit() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        let released = prot.record_process_commit(ProcessId(1));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].0, ProcessId(2));
        assert_eq!(released[0].1, vec![fx.a(2, 3)]);
        prot.record_deferred_released(fx.a(2, 3));
        assert!(prot.deferred_of(ProcessId(2)).is_empty());
        assert!(prot.can_commit(ProcessId(2)).is_ok());
    }

    #[test]
    fn wait_policy_blocks_execution() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::DeferExecution);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        assert!(matches!(
            prot.request(ProcessId(2), svc(&fx, 2, 3)),
            Admission::Wait { .. }
        ));
    }

    #[test]
    fn cycle_rejected() {
        // a1_1 ≪ a2_1 gives P₁ → P₂; then a2_4 executing before a1_2 would
        // give P₂ → P₁ — the Figure 4(b) cycle.
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        prot.record_executed(fx.a(2, 4), false);
        assert!(matches!(
            prot.request(ProcessId(1), svc(&fx, 1, 2)),
            Admission::Reject { .. }
        ));
    }

    #[test]
    fn quasi_commit_allows_compensatable_conflict_without_cascade() {
        // Figure 9 / Example 10: after P₁'s pivot commits, a1_1 is stable;
        // P₃'s conflicting a3_1 is admitted, and an abort of P₁ does not
        // cascade into P₃ (a1_1 will never be compensated).
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(3));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(1, 2), false); // pivot commits: a1_1 stable
        assert_eq!(prot.request(ProcessId(3), svc(&fx, 3, 1)), Admission::Allow);
        prot.record_executed(fx.a(3, 1), false);
        // P₁ aborts: completion = a1_3⁻¹-style compensations (none here
        // touching P₃) + forward path a1_5, a1_6.
        let victims = prot.plan_abort(ProcessId(1), &[], &[svc(&fx, 1, 5), svc(&fx, 1, 6)]);
        assert!(victims.is_empty());
    }

    #[test]
    fn abort_cascades_into_conflicting_dependent() {
        // P₁ executed a1_1 (B-REC), P₃ read conflicting a3_1; P₁'s abort
        // compensates a1_1 ⇒ P₃ must cascade (the Example 8 cycle otherwise).
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(3));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(3, 1), false);
        let victims = prot.plan_abort(ProcessId(1), &[fx.a(1, 1)], &[]);
        assert_eq!(victims, vec![ProcessId(3)]);
    }

    #[test]
    fn abort_drops_prepared_activities() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        prot.record_process_abort(ProcessId(2));
        assert!(prot.deferred_of(ProcessId(2)).is_empty());
        assert_eq!(prot.status(ProcessId(2)), ProtStatus::Aborted);
    }

    #[test]
    fn commit_dependency_cleared_by_predecessor_abort() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.record_executed(fx.a(1, 1), false);
        prot.record_executed(fx.a(2, 1), false);
        assert!(prot.can_commit(ProcessId(2)).is_err());
        prot.record_process_abort(ProcessId(1));
        assert!(prot.can_commit(ProcessId(2)).is_ok());
    }

    #[test]
    fn indexes_stay_consistent_through_lifecycle() {
        let fx = fixtures::paper_world();
        let mut prot = Protocol::new(&fx.spec, DeferPolicy::PrepareAndDefer);
        prot.register(ProcessId(1));
        prot.register(ProcessId(2));
        prot.register(ProcessId(3));
        prot.record_executed(fx.a(1, 1), false);
        prot.check_index_invariants();
        prot.record_executed(fx.a(2, 1), false);
        prot.record_executed(fx.a(2, 2), false);
        prot.record_executed(fx.a(2, 3), true);
        prot.check_index_invariants();
        prot.mark_aborting(ProcessId(2));
        prot.record_prepared_aborted(fx.a(2, 3));
        prot.record_compensated(fx.a(2, 2));
        prot.record_compensated(fx.a(2, 1));
        prot.record_process_abort(ProcessId(2));
        prot.check_index_invariants();
        prot.record_executed(fx.a(3, 1), false);
        prot.record_process_commit(ProcessId(1));
        prot.check_index_invariants();
        prot.record_process_commit(ProcessId(3));
        prot.check_index_invariants();
    }
}
