//! Process schedules `S = (𝒫_S, 𝒜_S, ≪_S)` (Definition 7).
//!
//! A schedule is recorded as a linear history of events, the form in which a
//! scheduler observes it. The partial order `≪_S` is derived: activities of
//! the same process are ordered by their (legal) execution order, and
//! *conflicting* activities of different processes are ordered by their
//! positions in the history; non-conflicting cross-process activities stay
//! unordered. Replaying a history through the per-process
//! [`crate::state::ProcessState`] machines checks
//! Definition 7.1 — every process's precedence and preference order is
//! respected — and yields each process's final state, which the completion
//! construction (Definition 8) builds on.

use crate::error::ScheduleError;
use crate::ids::{GlobalActivityId, ProcessId, ServiceId};
use crate::spec::Spec;
use crate::state::{FailureOutcome, ProcessState};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One event of a schedule history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Activity invoked and committed at its subsystem.
    Execute(GlobalActivityId),
    /// Activity definitively failed (leaves no effects; Definition 4).
    Fail(GlobalActivityId),
    /// Compensating activity of a previously executed activity committed.
    Compensate(GlobalActivityId),
    /// Process commit `C_i`.
    Commit(ProcessId),
    /// Process abort `A_i` — completion activities follow (or are appended
    /// by the completion construction).
    Abort(ProcessId),
    /// Set-oriented abort of all listed processes (Definition 8.2b).
    GroupAbort(Vec<ProcessId>),
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Execute(g) => write!(f, "{g}"),
            Event::Fail(g) => write!(f, "fail({g})"),
            Event::Compensate(g) => write!(f, "{g}⁻¹"),
            Event::Commit(p) => write!(f, "C{}", p.0),
            Event::Abort(p) => write!(f, "A{}", p.0),
            Event::GroupAbort(ps) => {
                write!(f, "A(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Whether an operation is a regular (forward) activity or a compensating
/// activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A regular activity execution.
    Forward,
    /// A compensating activity `a⁻¹`.
    Compensation,
}

/// One effect-leaving operation of a schedule, in the normalized view used by
/// the serializability/reduction machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// Position among the schedule's operations (dense, 0-based).
    pub index: usize,
    /// Position of the originating event in the history (completion-added
    /// operations get positions past the end of the history).
    pub event_index: usize,
    /// The activity this operation executes or compensates.
    pub gid: GlobalActivityId,
    /// The *base* service of the activity. Conflicts are evaluated on base
    /// services (perfect commutativity, §3.2).
    pub service: ServiceId,
    /// Forward or compensating.
    pub kind: OpKind,
    /// Whether this operation was added by the completion construction
    /// (Definition 8) rather than present in the original history.
    pub from_completion: bool,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            OpKind::Forward => write!(f, "{}", self.gid),
            OpKind::Compensation => write!(f, "{}⁻¹", self.gid),
        }
    }
}

/// A schedule history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    events: Vec<Event>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends an arbitrary event.
    pub fn push(&mut self, event: Event) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Appends an activity execution.
    pub fn execute(&mut self, gid: GlobalActivityId) -> &mut Self {
        self.push(Event::Execute(gid))
    }

    /// Appends an activity failure.
    pub fn fail(&mut self, gid: GlobalActivityId) -> &mut Self {
        self.push(Event::Fail(gid))
    }

    /// Appends a compensation.
    pub fn compensate(&mut self, gid: GlobalActivityId) -> &mut Self {
        self.push(Event::Compensate(gid))
    }

    /// Appends a process commit.
    pub fn commit(&mut self, pid: ProcessId) -> &mut Self {
        self.push(Event::Commit(pid))
    }

    /// Appends a process abort.
    pub fn abort(&mut self, pid: ProcessId) -> &mut Self {
        self.push(Event::Abort(pid))
    }

    /// Appends a group abort.
    pub fn group_abort(&mut self, pids: Vec<ProcessId>) -> &mut Self {
        self.push(Event::GroupAbort(pids))
    }

    /// The prefix consisting of the first `k` events.
    pub fn prefix(&self, k: usize) -> Schedule {
        Schedule {
            events: self.events[..k.min(self.events.len())].to_vec(),
        }
    }

    /// Replays the history against a spec, validating legality
    /// (Definition 7.1) and producing per-process final states plus the
    /// normalized operation list.
    pub fn replay<'a>(&self, spec: &'a Spec) -> Result<Replay<'a>, ScheduleError> {
        let mut replay = Replay {
            states: BTreeMap::new(),
            commit_event: BTreeMap::new(),
            abort_event: BTreeMap::new(),
            ops: Vec::new(),
        };
        for (ei, event) in self.events.iter().enumerate() {
            match event {
                Event::Execute(g) => {
                    let service = spec.catalog.base(spec.service_of(*g)?);
                    replay
                        .state_mut(spec, g.process)?
                        .apply_commit(g.activity)?;
                    replay.push_op(ei, *g, service, OpKind::Forward);
                }
                Event::Fail(g) => {
                    spec.service_of(*g)?;
                    let outcome = replay
                        .state_mut(spec, g.process)?
                        .apply_failure(g.activity)?;
                    if outcome == FailureOutcome::Stuck {
                        return Err(ScheduleError::NoAlternativeLeft(*g));
                    }
                }
                Event::Compensate(g) => {
                    let service = spec.catalog.base(spec.service_of(*g)?);
                    replay
                        .state_mut(spec, g.process)?
                        .apply_compensation(g.activity)?;
                    replay.push_op(ei, *g, service, OpKind::Compensation);
                }
                Event::Commit(p) => {
                    replay.state_mut(spec, *p)?.apply_process_commit()?;
                    replay.commit_event.insert(*p, ei);
                }
                Event::Abort(p) => {
                    replay.state_mut(spec, *p)?.apply_process_abort()?;
                    replay.abort_event.insert(*p, ei);
                }
                Event::GroupAbort(ps) => {
                    for p in ps {
                        let st = replay.state_mut(spec, *p)?;
                        if st.is_active() {
                            st.apply_process_abort()?;
                            replay.abort_event.insert(*p, ei);
                        }
                    }
                }
            }
        }
        Ok(replay)
    }

    /// The normalized operations of this history (validating it on the way).
    pub fn ops(&self, spec: &Spec) -> Result<Vec<Op>, ScheduleError> {
        Ok(self.replay(spec)?.ops)
    }
}

/// Result of replaying a schedule: per-process machines plus bookkeeping.
#[derive(Debug)]
pub struct Replay<'a> {
    /// Final state machine of every process that appeared.
    pub states: BTreeMap<ProcessId, ProcessState<'a>>,
    /// Event index of each `Commit`.
    pub commit_event: BTreeMap<ProcessId, usize>,
    /// Event index of each `Abort` (or the group abort covering it).
    pub abort_event: BTreeMap<ProcessId, usize>,
    /// Normalized effect-leaving operations, in history order.
    pub ops: Vec<Op>,
}

impl<'a> Replay<'a> {
    fn state_mut(
        &mut self,
        spec: &'a Spec,
        pid: ProcessId,
    ) -> Result<&mut ProcessState<'a>, ScheduleError> {
        if let std::collections::btree_map::Entry::Vacant(e) = self.states.entry(pid) {
            let process = spec.process(pid)?;
            let st = ProcessState::new(process, &spec.catalog).map_err(|_| {
                ScheduleError::Model(crate::error::ModelError::NotATree {
                    process: pid,
                    activity: crate::ids::ActivityId(0),
                })
            })?;
            e.insert(st);
        }
        Ok(self.states.get_mut(&pid).expect("just inserted"))
    }

    fn push_op(
        &mut self,
        event_index: usize,
        gid: GlobalActivityId,
        service: ServiceId,
        kind: OpKind,
    ) {
        let index = self.ops.len();
        self.ops.push(Op {
            index,
            event_index,
            gid,
            service,
            kind,
            from_completion: false,
        });
    }

    /// Whether a process committed in the history.
    pub fn committed(&self, pid: ProcessId) -> bool {
        self.commit_event.contains_key(&pid)
    }

    /// Processes still active at the end of the history.
    pub fn active_processes(&self) -> Vec<ProcessId> {
        self.states
            .iter()
            .filter(|(_, st)| st.is_active())
            .map(|(&p, _)| p)
            .collect()
    }
}

/// Renders a schedule as a one-line history (used by the report binary).
pub fn render(schedule: &Schedule) -> String {
    let mut out = String::new();
    for (i, e) in schedule.events().iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&e.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    /// Builds the serializable schedule S_t2 of Figure 4(a) / Example 4:
    /// a1_1 a2_1 a2_2 a2_3 a1_2 a2_4 a1_3 (both processes active).
    pub(crate) fn figure4a_st2(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 3));
        s
    }

    #[test]
    fn legal_history_replays() {
        let fx = fixtures::paper_world();
        let s = figure4a_st2(&fx);
        let replay = s.replay(&fx.spec).unwrap();
        assert_eq!(replay.ops.len(), 7);
        assert_eq!(replay.active_processes(), vec![ProcessId(1), ProcessId(2)]);
        assert!(!replay.committed(ProcessId(1)));
    }

    #[test]
    fn precedence_violation_rejected() {
        // a1_2 before a1_1 violates ≪_1 (Definition 7.1).
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 2));
        assert!(matches!(
            s.replay(&fx.spec).unwrap_err(),
            ScheduleError::NotOnActiveBranch(_)
        ));
    }

    #[test]
    fn failure_switches_to_alternative_in_replay() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .fail(fx.a(1, 4))
            .compensate(fx.a(1, 3))
            .execute(fx.a(1, 5))
            .execute(fx.a(1, 6))
            .commit(ProcessId(1));
        let replay = s.replay(&fx.spec).unwrap();
        assert!(replay.committed(ProcessId(1)));
        // Ops: 4 executes + 1 compensation + 2 executes.
        assert_eq!(replay.ops.len(), 6);
        assert_eq!(
            replay
                .ops
                .iter()
                .filter(|o| o.kind == OpKind::Compensation)
                .count(),
            1
        );
    }

    #[test]
    fn retriable_fail_event_rejected() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        for k in 1..=4 {
            s.execute(fx.a(2, k));
        }
        s.fail(fx.a(2, 5));
        assert!(matches!(
            s.replay(&fx.spec).unwrap_err(),
            ScheduleError::RetriableCannotFail(_)
        ));
    }

    #[test]
    fn abort_followed_by_completion_events() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .abort(ProcessId(1))
            .compensate(fx.a(1, 3))
            .execute(fx.a(1, 5))
            .execute(fx.a(1, 6));
        let replay = s.replay(&fx.spec).unwrap();
        let st = &replay.states[&ProcessId(1)];
        assert_eq!(st.status(), crate::state::ProcessStatus::Aborted);
        assert!(replay.abort_event.contains_key(&ProcessId(1)));
    }

    #[test]
    fn group_abort_applies_to_active_processes_only() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1));
        // P2 fully executes and commits.
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        s.group_abort(vec![ProcessId(1), ProcessId(2)]);
        let replay = s.replay(&fx.spec).unwrap();
        assert!(replay.committed(ProcessId(2)));
        assert!(replay.abort_event.contains_key(&ProcessId(1)));
        assert!(!replay.abort_event.contains_key(&ProcessId(2)));
    }

    #[test]
    fn prefix_truncates() {
        let fx = fixtures::paper_world();
        let s = figure4a_st2(&fx);
        assert_eq!(s.prefix(3).len(), 3);
        assert_eq!(s.prefix(99).len(), s.len());
        assert!(s.prefix(0).is_empty());
    }

    #[test]
    fn ops_store_base_services() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .fail(fx.a(1, 4))
            .compensate(fx.a(1, 3));
        let ops = s.ops(&fx.spec).unwrap();
        let comp_op = ops.iter().find(|o| o.kind == OpKind::Compensation).unwrap();
        let fwd_op = ops
            .iter()
            .find(|o| o.gid == fx.a(1, 3) && o.kind == OpKind::Forward)
            .unwrap();
        // Perfect commutativity: the compensation carries its base service.
        assert_eq!(comp_op.service, fwd_op.service);
    }

    #[test]
    fn event_rendering() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .fail(fx.a(1, 2))
            .compensate(fx.a(1, 1))
            .commit(ProcessId(1))
            .group_abort(vec![ProcessId(1), ProcessId(2)]);
        let text = render(&s);
        assert_eq!(text, "a1_0 fail(a1_1) a1_0⁻¹ C1 A(P1,P2)");
    }

    #[test]
    fn unknown_process_rejected() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.commit(ProcessId(42));
        assert!(matches!(
            s.replay(&fx.spec).unwrap_err(),
            ScheduleError::Model(_)
        ));
    }
}
