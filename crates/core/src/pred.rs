//! Prefix-reducibility (Definition 10): the paper's correctness criterion
//! for dynamic scheduling of transactional processes.
//!
//! RED is not prefix-closed — a schedule can be reducible while one of its
//! prefixes is not (Example 8), so an online scheduler must guarantee that
//! *every* prefix of the emitted history is reducible. [`check_pred`]
//! evaluates exactly that: it completes and reduces each prefix of the
//! history. Theorem 1 then gives serializability and process-recoverability
//! (see [`crate::recoverability`]).

use crate::completion::complete;
use crate::error::ScheduleError;
use crate::reduction::reduce;
use crate::schedule::Schedule;
use crate::spec::Spec;

/// Detailed PRED evaluation of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredReport {
    /// Whether every prefix is reducible.
    pub pred: bool,
    /// Reducibility per prefix length `0..=n`.
    pub prefix_reducible: Vec<bool>,
    /// The shortest non-reducible prefix length, if any.
    pub first_violation: Option<usize>,
}

impl PredReport {
    /// Whether the full schedule (largest prefix) is reducible.
    pub fn reducible(&self) -> bool {
        *self.prefix_reducible.last().unwrap_or(&true)
    }
}

/// Checks prefix-reducibility (Definition 10) by completing and reducing
/// every prefix of the history.
pub fn check_pred(spec: &Spec, schedule: &Schedule) -> Result<PredReport, ScheduleError> {
    let n = schedule.len();
    let mut prefix_reducible = Vec::with_capacity(n + 1);
    let mut first_violation = None;
    for k in 0..=n {
        let prefix = schedule.prefix(k);
        let completed = complete(spec, &prefix)?;
        let red = reduce(spec, &completed).reducible;
        if !red && first_violation.is_none() {
            first_violation = Some(k);
        }
        prefix_reducible.push(red);
    }
    Ok(PredReport {
        pred: first_violation.is_none(),
        prefix_reducible,
        first_violation,
    })
}

/// Whether a history is PRED.
pub fn is_pred(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    Ok(check_pred(spec, schedule)?.pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::ProcessId;

    fn st2(fx: &fixtures::PaperWorld) -> Schedule {
        // Figure 4(a) at t2.
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 3));
        s
    }

    /// Figure 7's schedule S″: P₂ runs ahead of P₁ so every conflict pair is
    /// ordered P₂ → P₁ consistently, including under completion.
    fn figure7(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 1))
            .execute(fx.a(2, 5))
            .commit(ProcessId(2))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3));
        s
    }

    #[test]
    fn example_8_st2_is_red_but_not_pred() {
        // Example 6 shows S_t2 ∈ RED; Example 8 shows its prefix S_t1 is not
        // reducible, hence S_t2 ∉ PRED.
        let fx = fixtures::paper_world();
        let report = check_pred(&fx.spec, &st2(&fx)).unwrap();
        assert!(report.reducible(), "S_t2 itself is RED (Example 6)");
        assert!(!report.pred, "S_t2 is not PRED (Example 8)");
        // The violating prefix is the paper's S_t1 — the 4-event prefix in
        // which P₂'s pivot a2_3 committed (P₂ in F-REC) while P₁ is still
        // B-REC: completing it creates the cycle a1_1 ≪ a2_1 ≪ a1_1⁻¹ that
        // no reduction rule eliminates (Figure 8).
        assert_eq!(report.first_violation, Some(4));
    }

    #[test]
    fn example_9_figure7_is_pred() {
        let fx = fixtures::paper_world();
        let report = check_pred(&fx.spec, &figure7(&fx)).unwrap();
        assert!(report.pred, "{report:?}");
    }

    #[test]
    fn serial_execution_is_pred() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        for k in 1..=4 {
            s.execute(fx.a(1, k));
        }
        s.commit(ProcessId(1));
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        assert!(is_pred(&fx.spec, &s).unwrap());
    }

    #[test]
    fn empty_schedule_is_pred() {
        let fx = fixtures::paper_world();
        assert!(is_pred(&fx.spec, &Schedule::new()).unwrap());
    }

    #[test]
    fn pred_implies_red() {
        // By definition, PRED ⊆ RED (the full schedule is one prefix).
        let fx = fixtures::paper_world();
        for schedule in [figure7(&fx), st2(&fx)] {
            let report = check_pred(&fx.spec, &schedule).unwrap();
            if report.pred {
                assert!(report.reducible());
            }
        }
    }

    #[test]
    fn quasi_commit_example_10_is_pred() {
        // Figure 9: a3_1 conflicts a1_1 but runs after P₁'s pivot committed
        // (quasi-commit): compensation of a1_1 is no longer possible, so no
        // cycle can arise.
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(1, 2)) // pivot: P₁ now F-REC
            .execute(fx.a(3, 1)) // conflicting activity of P₃
            .execute(fx.a(1, 3));
        let report = check_pred(&fx.spec, &s).unwrap();
        assert!(report.pred, "{report:?}");
    }

    #[test]
    fn conflicting_access_before_quasi_commit_cascades_or_breaks_pred() {
        // a3_1 runs BEFORE P₁'s pivot. As long as both processes can still
        // cascade-abort together, the prefix is reducible (compensations
        // cancel pairwise in reverse order)...
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1)).execute(fx.a(3, 1));
        assert!(is_pred(&fx.spec, &s).unwrap());
        // ...but once P₃ turns forward-recoverable (its retriable a3_2
        // commits), a3_1 can no longer be cascaded away: if P₁ aborts,
        // a1_1⁻¹ closes the cycle a1_1 ≪ a3_1 ≪ a1_1⁻¹ — not PRED.
        s.execute(fx.a(3, 2)).commit(ProcessId(3));
        let report = check_pred(&fx.spec, &s).unwrap();
        assert!(!report.pred);
        assert_eq!(report.first_violation, Some(3));
    }

    #[test]
    fn report_prefix_vector_has_length_n_plus_one() {
        let fx = fixtures::paper_world();
        let s = st2(&fx);
        let report = check_pred(&fx.spec, &s).unwrap();
        assert_eq!(report.prefix_reducible.len(), s.len() + 1);
        assert!(report.prefix_reducible[0], "empty prefix always reducible");
    }
}
