//! # txproc-core
//!
//! Formal model and decision procedures for **concurrency control and
//! recovery in transactional process management**, reproducing
//! H. Schuldt, G. Alonso, H.-J. Schek (PODS 1999).
//!
//! The paper extends the unified theory of concurrency control and recovery
//! [SWY93, AVA⁺94, VHYBS98] to *transactional processes* — partially ordered
//! invocations of transactional services that are compensatable, pivot, or
//! retriable, with preference-ordered alternative execution paths in the
//! style of flexible transactions [ELLR90, ZNBB94]. Its central result is a
//! single correctness criterion, **prefix-reducibility of completed process
//! schedules (PRED)**, which simultaneously guarantees serializability and
//! process-recoverability (Theorem 1).
//!
//! ## Layout
//!
//! | module | paper element |
//! |---|---|
//! | [`ids`] | identifiers for services, processes, activities |
//! | [`activity`] | Â and termination guarantees (Defs 1–4) |
//! | [`conflict`] | commutativity / conflicts with perfect closure (Def 6) |
//! | [`process`] | the process model `P = (A, ≪, ◁)` (Def 5) |
//! | [`flex`] | well-formed flex structure, guaranteed termination |
//! | [`state`] | per-process execution machine, completions 𝒞(P) |
//! | [`spec`] | catalog + conflicts + process registry |
//! | [`schedule`] | process schedules and histories (Def 7) |
//! | [`serializability`] | conflict graphs (§3.2) |
//! | [`completion`] | completed process schedules S̃ (Def 8) |
//! | [`reduction`] | reducibility RED (Def 9) |
//! | [`pred`] | prefix-reducibility PRED (Def 10) |
//! | [`pred_incremental`] | incremental event-by-event PRED certifier |
//! | [`recoverability`] | Proc-REC (Def 11), Theorem 1, SOT discussion |
//! | [`protocol`] | the online scheduling protocol (Lemmas 1–3, §3.5) |
//! | [`trace`] | structured decision tracing (event journal, sinks, explain) |
//! | [`wal`] | durable write-ahead journal (framed records, fsync policies) |
//! | [`telemetry`] | metrics registry, phase timers, Prometheus/JSON export |
//! | [`weak`] | strong vs. weak orders (§3.6) |
//! | [`fixtures`] | the paper's running examples, ready made |
//!
//! ## Quick start
//!
//! ```
//! use txproc_core::fixtures;
//! use txproc_core::pred::check_pred;
//! use txproc_core::schedule::Schedule;
//!
//! // Figure 4(a)'s interleaving of the paper's processes P₁ and P₂:
//! let fx = fixtures::paper_world();
//! let mut s = Schedule::new();
//! s.execute(fx.a(1, 1))
//!     .execute(fx.a(2, 1))
//!     .execute(fx.a(2, 2))
//!     .execute(fx.a(2, 3))
//!     .execute(fx.a(1, 2))
//!     .execute(fx.a(2, 4))
//!     .execute(fx.a(1, 3));
//! let report = check_pred(&fx.spec, &s).unwrap();
//! // Example 6: the schedule is reducible — but Example 8: not PRED.
//! assert!(report.reducible());
//! assert!(!report.pred);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod completion;
pub mod compose;
pub mod conflict;
pub mod domains;
pub mod dot;
pub mod error;
pub mod fixtures;
pub mod flex;
pub mod ids;
pub mod order;
pub mod pred;
pub mod pred_incremental;
pub mod process;
pub mod protocol;
pub mod recoverability;
pub mod reduction;
pub mod schedule;
pub mod serializability;
pub mod spec;
pub mod state;
pub mod telemetry;
pub mod trace;
pub mod wal;
pub mod weak;

pub use activity::{Catalog, Termination};
pub use conflict::{ConflictMatrix, ConflictOracle};
pub use domains::{naive_components, DomainPartition, UnionFind};
pub use error::{ModelError, ScheduleError};
pub use ids::{ActivityId, GlobalActivityId, ProcessId, ServiceId};
pub use pred::{check_pred, is_pred};
pub use pred_incremental::{check_pred_incremental, IncrementalPred, StepVerdict};
pub use process::{Process, ProcessBuilder};
pub use schedule::{Event, Schedule};
pub use spec::Spec;
pub use telemetry::{Phase, Registry, Snapshot, Telemetry};
pub use trace::{Journal, JsonlSink, NoopSink, RingSink, TraceEvent, TraceRecord, TraceSink};
pub use wal::{DurabilityPolicy, MemWal, WalRecord, WalWriter};
