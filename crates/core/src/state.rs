//! Per-process execution state machine: tracks one process through commits,
//! failures, alternative switching, and recovery (§3.1).
//!
//! The machine owns the paper's operational semantics:
//!
//! * the precedence order `≪` is temporal: an activity only starts after its
//!   predecessor committed,
//! * on a failure, execution falls back to the deepest reachable choice point
//!   (compensating the committed compensatable activities after it, in
//!   reverse order) and continues with the next preferred alternative,
//! * a process is **backward-recoverable** (`B-REC`) until its
//!   state-determining activity — the first non-compensatable activity to
//!   commit — and **forward-recoverable** (`F-REC`) afterwards,
//! * the *completion* `𝒞(P)` (§3.1) is what recovery must execute: in
//!   `B-REC` the backward recovery path (compensations in reverse order), in
//!   `F-REC` local backward recovery to the last state-determining element
//!   followed by the lowest-priority (all-retriable) forward path.

use crate::activity::{Catalog, Termination};
use crate::error::ScheduleError;
use crate::flex::FlexError;
use crate::ids::{ActivityId, GlobalActivityId};
use crate::process::{Process, Successors};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One effect-leaving step of a process execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExecStep {
    /// The activity was invoked and committed.
    Executed(ActivityId),
    /// The activity's compensating activity was invoked and committed.
    Compensated(ActivityId),
}

/// Lifecycle of a process inside a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessStatus {
    /// Still executing (possibly mid-recovery).
    Active,
    /// Terminated with commit `C_i`.
    Committed,
    /// Terminated with abort `A_i` (its completion has been fully executed).
    Aborted,
}

/// The recovery class of an active process (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryClass {
    /// Backward-recoverable: no non-compensatable activity committed yet.
    BRec,
    /// Forward-recoverable: the state-determining activity committed.
    FRec,
}

/// Result of [`ProcessState::apply_failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureOutcome {
    /// Execution falls back to an alternative: the listed compensations run
    /// first (in order), then execution resumes at `resume`.
    Alternative {
        /// Compensations to execute, in (reverse) order.
        compensations: Vec<ActivityId>,
        /// First activity of the next alternative branch.
        resume: ActivityId,
    },
    /// No alternative is reachable but the process is still `B-REC`: the
    /// whole process aborts backward with the listed compensations.
    ProcessAbort {
        /// Compensations to execute, in (reverse) order.
        compensations: Vec<ActivityId>,
    },
    /// No alternative is reachable and the process is `F-REC`: termination is
    /// not guaranteed. Only possible for processes that fail the
    /// [`FlexAnalysis`](crate::flex::FlexAnalysis) check.
    Stuck,
}

/// The completion `𝒞(P_i)` of a process (§3.1): the activities recovery must
/// execute to terminate it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// Compensating activities, in execution order (reverse commit order of
    /// their base activities — Lemma 2).
    pub compensations: Vec<ActivityId>,
    /// Forward recovery path (empty in `B-REC`).
    pub forward: Vec<ActivityId>,
    /// Whether every forward activity is retriable, i.e. the completion is
    /// guaranteed to succeed. Always `true` for strictly well-formed
    /// processes.
    pub guaranteed: bool,
}

impl Completion {
    /// Whether the completion has nothing to do.
    pub fn is_empty(&self) -> bool {
        self.compensations.is_empty() && self.forward.is_empty()
    }

    /// Total number of completion activities.
    pub fn len(&self) -> usize {
        self.compensations.len() + self.forward.len()
    }
}

/// Execution state of one process.
#[derive(Debug, Clone)]
pub struct ProcessState<'a> {
    process: &'a Process,
    catalog: &'a Catalog,
    status: ProcessStatus,
    /// Effect-leaving steps in order.
    steps: Vec<ExecStep>,
    /// Commit order of committed activities (compensated ones retained).
    exec_order: Vec<ActivityId>,
    committed: Vec<bool>,
    compensated: Vec<bool>,
    /// Per choice node: index of the branch currently being tried.
    branch_taken: Vec<Option<usize>>,
    /// Next activity to execute (None: path end reached).
    frontier: Option<ActivityId>,
    /// Last committed (and not compensated) non-compensatable activity: the
    /// current state-determining element / recovery boundary.
    last_ncp: Option<ActivityId>,
    /// Compensations that must execute before anything else.
    pending_compensations: VecDeque<ActivityId>,
    /// Where execution resumes once pending compensations are flushed.
    resume: Option<ActivityId>,
    /// Whether a process-level abort is in progress.
    abort_requested: bool,
}

impl<'a> ProcessState<'a> {
    /// Creates the initial state. Requires a tree-structured process without
    /// parallel splits (see [`FlexError`]).
    pub fn new(process: &'a Process, catalog: &'a Catalog) -> Result<Self, FlexError> {
        let root = process.root().ok_or(FlexError::NotATree)?;
        if !process.is_tree() {
            return Err(FlexError::NotATree);
        }
        for (id, _) in process.iter() {
            if matches!(process.successors(id), Successors::Parallel(_)) {
                return Err(FlexError::ParallelUnsupported(id));
            }
        }
        let n = process.len();
        Ok(Self {
            process,
            catalog,
            status: ProcessStatus::Active,
            steps: Vec::new(),
            exec_order: Vec::new(),
            committed: vec![false; n],
            compensated: vec![false; n],
            branch_taken: vec![None; n],
            frontier: Some(root),
            last_ncp: None,
            pending_compensations: VecDeque::new(),
            resume: None,
            abort_requested: false,
        })
    }

    /// The process being executed.
    pub fn process(&self) -> &'a Process {
        self.process
    }

    /// Current lifecycle status.
    pub fn status(&self) -> ProcessStatus {
        self.status
    }

    /// Whether the process is still active.
    pub fn is_active(&self) -> bool {
        self.status == ProcessStatus::Active
    }

    /// Whether the process executed at least one effect-leaving step.
    pub fn has_started(&self) -> bool {
        !self.steps.is_empty()
    }

    /// The recovery class (§3.1): `F-REC` once a non-compensatable activity
    /// committed, `B-REC` before.
    pub fn recovery_class(&self) -> RecoveryClass {
        if self.last_ncp.is_some() {
            RecoveryClass::FRec
        } else {
            RecoveryClass::BRec
        }
    }

    /// The current state-determining element `s_{i_k}` — the last committed
    /// non-compensatable activity, if any.
    pub fn state_determining(&self) -> Option<ActivityId> {
        self.last_ncp
    }

    /// All effect-leaving steps so far, in order.
    pub fn steps(&self) -> &[ExecStep] {
        &self.steps
    }

    /// Whether an activity committed and has not been compensated.
    pub fn is_effective(&self, a: ActivityId) -> bool {
        self.committed[a.index()] && !self.compensated[a.index()]
    }

    /// The next regular activity eligible for invocation, or `None` when the
    /// path end is reached, compensations are pending, or the process
    /// terminated.
    pub fn next_activity(&self) -> Option<ActivityId> {
        if self.status != ProcessStatus::Active || !self.pending_compensations.is_empty() {
            return None;
        }
        self.frontier
    }

    /// The next pending compensation, if recovery is in progress.
    pub fn next_compensation(&self) -> Option<ActivityId> {
        if self.status != ProcessStatus::Active {
            return None;
        }
        self.pending_compensations.front().copied()
    }

    /// Whether a process-level abort is in progress (the machine is
    /// executing its completion).
    pub fn abort_in_progress(&self) -> bool {
        self.abort_requested && self.status == ProcessStatus::Active
    }

    /// Whether the process finished a valid execution path and may commit.
    pub fn can_commit(&self) -> bool {
        self.status == ProcessStatus::Active
            && self.frontier.is_none()
            && self.pending_compensations.is_empty()
            && !self.abort_requested
    }

    fn gid(&self, a: ActivityId) -> GlobalActivityId {
        GlobalActivityId::new(self.process.id, a)
    }

    fn termination(&self, a: ActivityId) -> Termination {
        self.catalog.termination(self.process.service(a))
    }

    /// Records the successful commit of the frontier activity and advances.
    pub fn apply_commit(&mut self, a: ActivityId) -> Result<(), ScheduleError> {
        if self.status != ProcessStatus::Active {
            return Err(ScheduleError::ProcessAlreadyTerminated(self.process.id));
        }
        if !self.pending_compensations.is_empty() {
            return Err(ScheduleError::PrecedenceViolation {
                activity: self.gid(a),
            });
        }
        if self.committed[a.index()] {
            return Err(ScheduleError::DuplicateInvocation(self.gid(a)));
        }
        if self.frontier != Some(a) {
            return Err(ScheduleError::NotOnActiveBranch(self.gid(a)));
        }
        self.committed[a.index()] = true;
        self.exec_order.push(a);
        self.steps.push(ExecStep::Executed(a));
        if !self.termination(a).is_compensatable() {
            self.last_ncp = Some(a);
        }
        self.frontier = match self.process.successors(a) {
            Successors::None => None,
            Successors::Seq(y) => Some(*y),
            Successors::Alternatives(branches) => {
                // Respect a branch pre-selected by a process-level abort
                // (forward recovery takes the lowest-priority alternative).
                let idx = self.branch_taken[a.index()].unwrap_or(0);
                self.branch_taken[a.index()] = Some(idx);
                Some(branches[idx])
            }
            Successors::Parallel(_) => unreachable!("rejected at construction"),
        };
        if self.frontier.is_none() && self.abort_requested {
            self.status = ProcessStatus::Aborted;
        }
        Ok(())
    }

    /// Records the definitive failure of the frontier activity
    /// (Definition 4) and computes how execution continues.
    pub fn apply_failure(&mut self, a: ActivityId) -> Result<FailureOutcome, ScheduleError> {
        if self.status != ProcessStatus::Active {
            return Err(ScheduleError::ProcessAlreadyTerminated(self.process.id));
        }
        if self.frontier != Some(a) || !self.pending_compensations.is_empty() {
            return Err(ScheduleError::NotOnActiveBranch(self.gid(a)));
        }
        if !self.termination(a).can_fail() {
            return Err(ScheduleError::RetriableCannotFail(self.gid(a)));
        }
        // Scan the committed, not-yet-compensated activities from newest back
        // to the recovery boundary for a choice point with an untried branch.
        let boundary_pos = self.boundary_position();
        let effective: Vec<(usize, ActivityId)> = self
            .exec_order
            .iter()
            .enumerate()
            .filter(|(_, &x)| self.is_effective(x))
            .map(|(i, &x)| (i, x))
            .collect();
        for &(pos, x) in effective.iter().rev() {
            if (pos as isize) < boundary_pos {
                break;
            }
            if let Successors::Alternatives(branches) = self.process.successors(x) {
                let tried = self.branch_taken[x.index()].unwrap_or(0);
                if tried + 1 < branches.len() {
                    // Compensate everything committed strictly after x.
                    let comps: Vec<ActivityId> = effective
                        .iter()
                        .filter(|&&(p, _)| p > pos)
                        .map(|&(_, y)| y)
                        .rev()
                        .collect();
                    debug_assert!(comps
                        .iter()
                        .all(|&y| self.termination(y).is_compensatable()));
                    let next = branches[tried + 1];
                    self.branch_taken[x.index()] = Some(tried + 1);
                    self.pending_compensations = comps.iter().copied().collect();
                    self.resume = Some(next);
                    if self.pending_compensations.is_empty() {
                        self.frontier = self.resume.take();
                    } else {
                        self.frontier = None;
                    }
                    return Ok(FailureOutcome::Alternative {
                        compensations: comps,
                        resume: next,
                    });
                }
            }
        }
        if self.last_ncp.is_none() {
            // B-REC: abort the whole process backward.
            let comps: Vec<ActivityId> = effective.iter().map(|&(_, y)| y).rev().collect();
            self.pending_compensations = comps.iter().copied().collect();
            self.resume = None;
            self.frontier = None;
            self.abort_requested = true;
            if self.pending_compensations.is_empty() {
                self.status = ProcessStatus::Aborted;
            }
            return Ok(FailureOutcome::ProcessAbort {
                compensations: comps,
            });
        }
        Ok(FailureOutcome::Stuck)
    }

    /// Position (in commit order) of the recovery boundary, or -1.
    fn boundary_position(&self) -> isize {
        match self.last_ncp {
            None => -1,
            Some(b) => self
                .exec_order
                .iter()
                .position(|&x| x == b)
                .map(|p| p as isize)
                .expect("boundary is committed"),
        }
    }

    /// Records the commit of the next pending compensating activity.
    pub fn apply_compensation(&mut self, a: ActivityId) -> Result<(), ScheduleError> {
        if self.status != ProcessStatus::Active {
            return Err(ScheduleError::ProcessAlreadyTerminated(self.process.id));
        }
        if self.pending_compensations.front() != Some(&a) {
            return Err(ScheduleError::InvalidCompensation(self.gid(a)));
        }
        self.pending_compensations.pop_front();
        self.compensated[a.index()] = true;
        self.steps.push(ExecStep::Compensated(a));
        if self.pending_compensations.is_empty() {
            self.frontier = self.resume.take();
            if self.frontier.is_none() && self.abort_requested {
                self.status = ProcessStatus::Aborted;
            }
        }
        Ok(())
    }

    /// Applies all pending compensations (test/enumeration convenience).
    pub fn run_pending_compensations(&mut self) {
        while let Some(a) = self.pending_compensations.front().copied() {
            self.apply_compensation(a)
                .expect("pending compensation is legal");
        }
    }

    /// Commits the process (`C_i`). Only legal after a valid execution path
    /// completed.
    pub fn apply_process_commit(&mut self) -> Result<(), ScheduleError> {
        if !self.can_commit() {
            return Err(ScheduleError::PrematureCommit(self.process.id));
        }
        self.status = ProcessStatus::Committed;
        Ok(())
    }

    /// Requests a process abort (`A_i`), switching the machine into executing
    /// its completion `𝒞(P)`. Returns the completion that must now run:
    /// compensations first (already queued), then the forward activities
    /// (which become the frontier path).
    pub fn apply_process_abort(&mut self) -> Result<Completion, ScheduleError> {
        if self.status != ProcessStatus::Active {
            return Err(ScheduleError::ProcessAlreadyTerminated(self.process.id));
        }
        let completion = self.completion();
        self.abort_requested = true;
        self.pending_compensations = completion.compensations.iter().copied().collect();
        match self.last_ncp {
            None => {
                // B-REC: pure backward recovery.
                self.resume = None;
                self.frontier = None;
            }
            Some(boundary) => {
                // F-REC: after local backward recovery, take the
                // lowest-priority alternative at every choice point.
                self.preselect_fallback_branches(boundary);
                self.resume = completion.forward.first().copied();
                self.frontier = None;
            }
        }
        if self.pending_compensations.is_empty() {
            self.frontier = self.resume.take();
        }
        if self.frontier.is_none() && self.pending_compensations.is_empty() {
            self.status = ProcessStatus::Aborted;
        }
        Ok(completion)
    }

    /// Marks the lowest-priority branch as taken at every choice point along
    /// the forward recovery path from `boundary`.
    fn preselect_fallback_branches(&mut self, boundary: ActivityId) {
        let mut cur = boundary;
        loop {
            match self.process.successors(cur) {
                Successors::None => break,
                Successors::Seq(y) => cur = *y,
                Successors::Alternatives(branches) => {
                    let last = branches.len() - 1;
                    self.branch_taken[cur.index()] = Some(last);
                    cur = branches[last];
                }
                Successors::Parallel(_) => unreachable!("rejected at construction"),
            }
        }
    }

    /// Computes the completion `𝒞(P_i)` for the current state (§3.1) without
    /// mutating the machine.
    ///
    /// * `B-REC`: all committed activities compensated in reverse order.
    /// * `F-REC`: committed compensatables after the last state-determining
    ///   element compensated in reverse order, then the lowest-priority
    ///   forward path from that element.
    ///
    /// A terminated process has an empty completion.
    pub fn completion(&self) -> Completion {
        if self.status != ProcessStatus::Active {
            return Completion {
                compensations: Vec::new(),
                forward: Vec::new(),
                guaranteed: true,
            };
        }
        let boundary_pos = self.boundary_position();
        let mut compensations: Vec<ActivityId> = self
            .exec_order
            .iter()
            .enumerate()
            .filter(|(p, &x)| (*p as isize) > boundary_pos && self.is_effective(x))
            .map(|(_, &x)| x)
            .collect();
        compensations.reverse();
        // Include compensations already queued but not yet applied: they are
        // part of what recovery still must execute. (They are exactly the
        // effective activities after the boundary, so the filter above
        // already covers them.)
        let mut forward = Vec::new();
        let mut guaranteed = true;
        if let Some(boundary) = self.last_ncp {
            let mut cur = boundary;
            loop {
                match self.process.successors(cur) {
                    Successors::None => break,
                    Successors::Seq(y) => {
                        cur = *y;
                        self.push_forward(cur, &mut forward, &mut guaranteed);
                    }
                    Successors::Alternatives(branches) => {
                        cur = *branches.last().expect("non-empty alternatives");
                        self.push_forward(cur, &mut forward, &mut guaranteed);
                    }
                    Successors::Parallel(_) => unreachable!("rejected at construction"),
                }
            }
        }
        Completion {
            compensations,
            forward,
            guaranteed,
        }
    }

    fn push_forward(&self, a: ActivityId, forward: &mut Vec<ActivityId>, guaranteed: &mut bool) {
        forward.push(a);
        if self.termination(a) != Termination::Retriable {
            *guaranteed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn a(i: u32) -> ActivityId {
        ActivityId(i)
    }

    #[test]
    fn happy_path_commits() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        assert_eq!(st.recovery_class(), RecoveryClass::BRec);
        for i in 0..4 {
            assert_eq!(st.next_activity(), Some(a(i)));
            st.apply_commit(a(i)).unwrap();
        }
        assert_eq!(st.recovery_class(), RecoveryClass::FRec);
        assert!(st.can_commit());
        st.apply_process_commit().unwrap();
        assert_eq!(st.status(), ProcessStatus::Committed);
        assert_eq!(st.steps().len(), 4);
    }

    #[test]
    fn frec_after_pivot() {
        // Example 2: before a1_2 commits P₁ is B-REC, after it F-REC.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        assert_eq!(st.recovery_class(), RecoveryClass::BRec);
        st.apply_commit(a(1)).unwrap();
        assert_eq!(st.recovery_class(), RecoveryClass::FRec);
        assert_eq!(st.state_determining(), Some(a(1)));
    }

    #[test]
    fn completion_in_brec_is_reverse_compensation() {
        // Example 2: in B-REC after a1_1, 𝒞(P₁) = {a1_1⁻¹}.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        let c = st.completion();
        assert_eq!(c.compensations, vec![a(0)]);
        assert!(c.forward.is_empty());
        assert!(c.guaranteed);
    }

    #[test]
    fn completion_in_frec_matches_example_2() {
        // Example 2: after a1_3 committed,
        // 𝒞(P₁) = {a1_3⁻¹ ≪ a1_5 ≪ a1_6}.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        for i in 0..3 {
            st.apply_commit(a(i)).unwrap();
        }
        let c = st.completion();
        assert_eq!(c.compensations, vec![a(2)]);
        assert_eq!(c.forward, vec![a(4), a(5)]);
        assert!(c.guaranteed);
    }

    #[test]
    fn failure_of_pivot_takes_alternative() {
        // Example 1: a1_4 fails ⇒ compensate a1_3, resume at a1_5.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        for i in 0..3 {
            st.apply_commit(a(i)).unwrap();
        }
        let outcome = st.apply_failure(a(3)).unwrap();
        assert_eq!(
            outcome,
            FailureOutcome::Alternative {
                compensations: vec![a(2)],
                resume: a(4),
            }
        );
        assert_eq!(st.next_activity(), None);
        assert_eq!(st.next_compensation(), Some(a(2)));
        st.apply_compensation(a(2)).unwrap();
        assert_eq!(st.next_activity(), Some(a(4)));
        st.apply_commit(a(4)).unwrap();
        st.apply_commit(a(5)).unwrap();
        assert!(st.can_commit());
    }

    #[test]
    fn failure_of_compensatable_takes_alternative_without_compensations() {
        // Example 1: a1_3 fails ⇒ no compensation needed, resume at a1_5.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        st.apply_commit(a(1)).unwrap();
        let outcome = st.apply_failure(a(2)).unwrap();
        assert_eq!(
            outcome,
            FailureOutcome::Alternative {
                compensations: vec![],
                resume: a(4),
            }
        );
        assert_eq!(st.next_activity(), Some(a(4)));
    }

    #[test]
    fn failure_before_pivot_aborts_backward() {
        // a1_2 (the pivot) fails while B-REC ⇒ process abort, compensate a1_1.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        let outcome = st.apply_failure(a(1)).unwrap();
        assert_eq!(
            outcome,
            FailureOutcome::ProcessAbort {
                compensations: vec![a(0)],
            }
        );
        st.apply_compensation(a(0)).unwrap();
        assert_eq!(st.status(), ProcessStatus::Aborted);
        assert_eq!(
            st.steps(),
            &[ExecStep::Executed(a(0)), ExecStep::Compensated(a(0))]
        );
    }

    #[test]
    fn failure_of_first_activity_aborts_with_no_effects() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        let outcome = st.apply_failure(a(0)).unwrap();
        assert_eq!(
            outcome,
            FailureOutcome::ProcessAbort {
                compensations: vec![],
            }
        );
        assert_eq!(st.status(), ProcessStatus::Aborted);
        assert!(!st.has_started());
    }

    #[test]
    fn process_abort_in_frec_runs_completion() {
        // Abort P₁ after a1_3: compensate a1_3, then run a1_5, a1_6.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        for i in 0..3 {
            st.apply_commit(a(i)).unwrap();
        }
        let c = st.apply_process_abort().unwrap();
        assert_eq!(c.compensations, vec![a(2)]);
        assert_eq!(c.forward, vec![a(4), a(5)]);
        st.apply_compensation(a(2)).unwrap();
        assert_eq!(st.next_activity(), Some(a(4)));
        st.apply_commit(a(4)).unwrap();
        st.apply_commit(a(5)).unwrap();
        assert_eq!(st.status(), ProcessStatus::Aborted);
    }

    #[test]
    fn process_abort_in_brec_is_pure_backward() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p2, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        st.apply_commit(a(1)).unwrap();
        let c = st.apply_process_abort().unwrap();
        assert_eq!(c.compensations, vec![a(1), a(0)]);
        assert!(c.forward.is_empty());
        st.apply_compensation(a(1)).unwrap();
        st.apply_compensation(a(0)).unwrap();
        assert_eq!(st.status(), ProcessStatus::Aborted);
    }

    #[test]
    fn completion_mid_retriable_tail_matches_example_5() {
        // P₂ executed through a2_4: 𝒞(P₂) = {a2_5}.
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p2, &fx.spec.catalog).unwrap();
        for i in 0..4 {
            st.apply_commit(a(i)).unwrap();
        }
        let c = st.completion();
        assert!(c.compensations.is_empty());
        assert_eq!(c.forward, vec![a(4)]);
        assert!(c.guaranteed);
    }

    #[test]
    fn retriable_failure_rejected() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p2, &fx.spec.catalog).unwrap();
        for i in 0..4 {
            st.apply_commit(a(i)).unwrap();
        }
        let err = st.apply_failure(a(4)).unwrap_err();
        assert!(matches!(err, ScheduleError::RetriableCannotFail(_)));
    }

    #[test]
    fn out_of_order_commit_rejected() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        let err = st.apply_commit(a(2)).unwrap_err();
        assert!(matches!(err, ScheduleError::NotOnActiveBranch(_)));
    }

    #[test]
    fn duplicate_commit_rejected() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        let err = st.apply_commit(a(0)).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::DuplicateInvocation(_) | ScheduleError::NotOnActiveBranch(_)
        ));
    }

    #[test]
    fn premature_process_commit_rejected() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p1, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        assert!(matches!(
            st.apply_process_commit().unwrap_err(),
            ScheduleError::PrematureCommit(_)
        ));
    }

    #[test]
    fn terminated_process_rejects_everything() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p2, &fx.spec.catalog).unwrap();
        for i in 0..5 {
            st.apply_commit(a(i)).unwrap();
        }
        st.apply_process_commit().unwrap();
        assert!(st.apply_commit(a(0)).is_err());
        assert!(st.apply_failure(a(0)).is_err());
        assert!(st.apply_process_abort().is_err());
        assert!(st.completion().is_empty());
        assert_eq!(st.next_activity(), None);
    }

    #[test]
    fn stuck_when_termination_not_guaranteed() {
        use crate::ids::ProcessId;
        use crate::process::ProcessBuilder;
        let mut cat = Catalog::new();
        let p1 = cat.pivot("p1");
        let p2 = cat.pivot("p2");
        let mut b = ProcessBuilder::new(ProcessId(7), "pp");
        let x = b.activity("x", p1);
        let y = b.activity("y", p2);
        b.precede(x, y);
        let proc = b.build(&cat).unwrap();
        let mut st = ProcessState::new(&proc, &cat).unwrap();
        st.apply_commit(ActivityId(0)).unwrap();
        let outcome = st.apply_failure(ActivityId(1)).unwrap();
        assert_eq!(outcome, FailureOutcome::Stuck);
    }

    #[test]
    fn wrong_compensation_order_rejected() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p2, &fx.spec.catalog).unwrap();
        st.apply_commit(a(0)).unwrap();
        st.apply_commit(a(1)).unwrap();
        st.apply_process_abort().unwrap();
        // Must compensate a2_2 (=index 1) first, not a2_1.
        let err = st.apply_compensation(a(0)).unwrap_err();
        assert!(matches!(err, ScheduleError::InvalidCompensation(_)));
    }

    #[test]
    fn abort_after_path_end_without_commit_is_frec_noop() {
        let fx = fixtures::paper_world();
        let mut st = ProcessState::new(&fx.p2, &fx.spec.catalog).unwrap();
        for i in 0..5 {
            st.apply_commit(a(i)).unwrap();
        }
        // Path finished but process commit not yet recorded: completion is
        // empty forward from the last retriable.
        let c = st.completion();
        assert!(c.is_empty());
        st.apply_process_abort().unwrap();
        assert_eq!(st.status(), ProcessStatus::Aborted);
    }
}
