//! Structured decision tracing for the scheduler.
//!
//! The paper's protocol (Lemmas 1–3) is defined by *decisions* — admit,
//! block, reject, defer a commit, group-abort — but a terminal history only
//! records their *effects*. This module defines a typed event journal of the
//! decisions themselves, with enough causal metadata (process, activity,
//! service, virtual time, history index) to answer "why was this operation
//! blocked?" and "why was this process aborted?" after the fact.
//!
//! Drivers emit [`TraceRecord`]s through a [`TraceSink`]. The [`NoopSink`] is
//! the default and is zero-cost: emission sites consult
//! [`TraceSink::enabled`] before building any payload, so an untraced run
//! performs no allocation and no branching beyond one predictable `bool`
//! check. [`Journal`] (shared in-memory vector), [`RingSink`] (bounded, keeps
//! the most recent records) and [`JsonlSink`] (streaming JSON-lines writer)
//! are provided for collection.
//!
//! On top of the raw journal sit three pure exporters: a pretty-printer
//! (`Display` on [`TraceRecord`]), a Chrome-trace JSON exporter
//! ([`chrome_trace`]) with one lane per process (plus shard and worker lane
//! groups for records stamped by the sharded runtimes) and explicit blocked
//! spans, and an explainer ([`explain_process`]) that walks the event chain
//! backwards from a process's fate to the decisions that produced it.
//!
//! For long runs a sink can be wrapped in a [`SampleSink`], which keeps the
//! records of 1-in-N processes (selected by pid, so a kept process's record
//! chain stays complete) and drops the rest.

use crate::ids::{GlobalActivityId, ProcessId, ServiceId};
use crate::schedule::Event;
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Why an abort was initiated — the first cause, not the mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AbortReason {
    /// Admission was rejected: executing the operation would have closed a
    /// cycle in the serialization order (Lemma 1.2).
    Rejected,
    /// The process was a victim of another process's abort (Lemma 3 /
    /// Definition 8.2b group abort).
    Cascade,
    /// A non-retriable activity failed definitively with no remaining
    /// alternative execution path.
    Failure,
    /// Certification of a deferred release or commit kept failing and the
    /// scheduler escalated (livelock breaker).
    CertStuck,
    /// The deadlock breaker picked this process as the youngest victim of a
    /// wait cycle.
    Deadlock,
    /// Abort requested from outside the scheduler (crash recovery of an
    /// in-flight process, operator action).
    External,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Rejected => "admission rejected (cycle)",
            AbortReason::Cascade => "cascaded from another abort",
            AbortReason::Failure => "definitive activity failure",
            AbortReason::CertStuck => "certification livelock breaker",
            AbortReason::Deadlock => "deadlock victim",
            AbortReason::External => "external request",
        };
        f.write_str(s)
    }
}

/// One scheduler decision, with its immediate evidence.
///
/// Variants carry the data the decision was *based on*: blocking operations'
/// owners for waits, the cycle witness for rejections, the victim set in
/// reverse-dependency topological order for group aborts, the certifier
/// verdict and frontier size for certification outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The request was admitted and the activity executed (Lemma 1.1 /
    /// Lemma 2 deferred mode). `edges_added` lists serialization-order edges
    /// `p → q` newly inserted by this execution.
    RequestAdmitted {
        /// The executed activity.
        gid: GlobalActivityId,
        /// Service invoked.
        service: ServiceId,
        /// `true` when admitted in prepare-and-defer mode (Lemma 2).
        deferred: bool,
        /// Processes whose live conflicting operations precede this one.
        blockers: Vec<ProcessId>,
        /// Serialization edges `(predecessor, this process)` added.
        edges_added: Vec<(ProcessId, ProcessId)>,
    },
    /// The request must wait (Lemma 1.1 with a non-compensatable follower,
    /// or the owner of a conflicting operation is aborting).
    RequestBlocked {
        /// The blocked activity.
        gid: GlobalActivityId,
        /// Service requested.
        service: ServiceId,
        /// Owners of the blocking operations.
        blockers: Vec<ProcessId>,
    },
    /// The request was rejected: execution would close a serialization cycle
    /// (Lemma 1.2). The process is aborted.
    RequestRejected {
        /// The rejected activity.
        gid: GlobalActivityId,
        /// Service requested.
        service: ServiceId,
        /// Cycle witness: a process already ordered after the requester.
        conflicting: ProcessId,
    },
    /// A forward activity failed definitively at its subsystem.
    ActivityFailed {
        /// The failed activity.
        gid: GlobalActivityId,
        /// Service invoked.
        service: ServiceId,
    },
    /// The activity prepared at its subsystem but its commit is deferred
    /// until the listed predecessor processes terminate (Lemma 2).
    CommitDeferred {
        /// The prepared activity.
        gid: GlobalActivityId,
        /// Processes whose termination gates the release.
        blockers: Vec<ProcessId>,
    },
    /// A previously deferred activity's commit was released (2PC decided).
    CommitReleased {
        /// The released activity.
        gid: GlobalActivityId,
    },
    /// A compensating activity was issued for an executed activity.
    CompensationStarted {
        /// The activity being compensated.
        gid: GlobalActivityId,
        /// Service whose compensation runs.
        service: ServiceId,
    },
    /// A completion step (compensation or forward completion) is gated on
    /// other processes' completion activities (Lemma 3 ordering).
    CompletionBlocked {
        /// The process whose completion is gated.
        pid: ProcessId,
        /// Processes whose completion activities must run first.
        wait_for: Vec<ProcessId>,
    },
    /// The process finished its path but must wait to commit until the
    /// processes it depends on have terminated (Definition 11.1 / Lemma 2).
    CommitBlocked {
        /// The process trying to commit.
        pid: ProcessId,
        /// Active predecessors in the serialization order.
        wait_for: Vec<ProcessId>,
    },
    /// Verdict of the PRED certifier on one candidate event.
    CertifyOutcome {
        /// The candidate history event.
        event: Event,
        /// Whether the extended prefix stays prefix-reducible.
        ok: bool,
        /// Size of the certified frontier (events covered by the verdict).
        frontier: usize,
    },
    /// An abort of `pid` began, for the stated first cause.
    AbortStarted {
        /// The aborting process.
        pid: ProcessId,
        /// First cause of the abort.
        reason: AbortReason,
    },
    /// A set-oriented abort (Definition 8.2b): `victims` in
    /// reverse-dependency topological order, aborted together with (and
    /// before) the initiator.
    GroupAbort {
        /// Process whose abort triggered the group (`None` during crash
        /// recovery, where the scheduler itself is the initiator).
        initiator: Option<ProcessId>,
        /// Victims in the order their aborts are issued.
        victims: Vec<ProcessId>,
        /// The operation whose rejection/failure triggered the abort.
        trigger: Option<GlobalActivityId>,
    },
    /// The process committed.
    ProcessCommitted {
        /// The committed process.
        pid: ProcessId,
    },
    /// The process finished aborting (all completion activities done).
    ProcessAborted {
        /// The aborted process.
        pid: ProcessId,
    },
}

impl TraceEvent {
    /// Short stable label of the variant, for filtering and lane names.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RequestAdmitted { .. } => "request_admitted",
            TraceEvent::RequestBlocked { .. } => "request_blocked",
            TraceEvent::RequestRejected { .. } => "request_rejected",
            TraceEvent::ActivityFailed { .. } => "activity_failed",
            TraceEvent::CommitDeferred { .. } => "commit_deferred",
            TraceEvent::CommitReleased { .. } => "commit_released",
            TraceEvent::CompensationStarted { .. } => "compensation_started",
            TraceEvent::CompletionBlocked { .. } => "completion_blocked",
            TraceEvent::CommitBlocked { .. } => "commit_blocked",
            TraceEvent::CertifyOutcome { .. } => "certify_outcome",
            TraceEvent::AbortStarted { .. } => "abort_started",
            TraceEvent::GroupAbort { .. } => "group_abort",
            TraceEvent::ProcessCommitted { .. } => "process_committed",
            TraceEvent::ProcessAborted { .. } => "process_aborted",
        }
    }

    /// The process this decision is *about* (the acting process), when any.
    pub fn pid(&self) -> Option<ProcessId> {
        match self {
            TraceEvent::RequestAdmitted { gid, .. }
            | TraceEvent::RequestBlocked { gid, .. }
            | TraceEvent::RequestRejected { gid, .. }
            | TraceEvent::ActivityFailed { gid, .. }
            | TraceEvent::CommitDeferred { gid, .. }
            | TraceEvent::CommitReleased { gid, .. }
            | TraceEvent::CompensationStarted { gid, .. } => Some(gid.process),
            TraceEvent::CompletionBlocked { pid, .. }
            | TraceEvent::CommitBlocked { pid, .. }
            | TraceEvent::AbortStarted { pid, .. }
            | TraceEvent::ProcessCommitted { pid }
            | TraceEvent::ProcessAborted { pid } => Some(*pid),
            TraceEvent::GroupAbort { initiator, .. } => *initiator,
            TraceEvent::CertifyOutcome { event, .. } => match event {
                Event::Execute(g) | Event::Fail(g) | Event::Compensate(g) => Some(g.process),
                Event::Commit(p) | Event::Abort(p) => Some(*p),
                Event::GroupAbort(ps) => ps.first().copied(),
            },
        }
    }

    /// Whether the record mentions `pid` at all (actor, blocker, victim, …).
    pub fn mentions(&self, pid: ProcessId) -> bool {
        if self.pid() == Some(pid) {
            return true;
        }
        match self {
            TraceEvent::RequestAdmitted {
                blockers,
                edges_added,
                ..
            } => blockers.contains(&pid) || edges_added.iter().any(|&(a, b)| a == pid || b == pid),
            TraceEvent::RequestBlocked { blockers, .. }
            | TraceEvent::CommitDeferred { blockers, .. } => blockers.contains(&pid),
            TraceEvent::RequestRejected { conflicting, .. } => *conflicting == pid,
            TraceEvent::CompletionBlocked { wait_for, .. }
            | TraceEvent::CommitBlocked { wait_for, .. } => wait_for.contains(&pid),
            TraceEvent::GroupAbort {
                initiator, victims, ..
            } => *initiator == Some(pid) || victims.contains(&pid),
            TraceEvent::CertifyOutcome { event, .. } => match event {
                Event::Execute(g) | Event::Fail(g) | Event::Compensate(g) => g.process == pid,
                Event::Commit(p) | Event::Abort(p) => *p == pid,
                Event::GroupAbort(ps) => ps.contains(&pid),
            },
            _ => false,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn pids(ps: &[ProcessId]) -> String {
            let strs: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
            strs.join(",")
        }
        match self {
            TraceEvent::RequestAdmitted {
                gid,
                service,
                deferred,
                blockers,
                edges_added,
            } => {
                write!(
                    f,
                    "admitted {gid} ({service}{})",
                    if *deferred { ", deferred" } else { "" }
                )?;
                if !blockers.is_empty() {
                    write!(f, " after [{}]", pids(blockers))?;
                }
                if !edges_added.is_empty() {
                    let es: Vec<String> = edges_added
                        .iter()
                        .map(|(a, b)| format!("{a}→{b}"))
                        .collect();
                    write!(f, " edges {{{}}}", es.join(","))?;
                }
                Ok(())
            }
            TraceEvent::RequestBlocked {
                gid,
                service,
                blockers,
            } => write!(f, "blocked {gid} ({service}) on [{}]", pids(blockers)),
            TraceEvent::RequestRejected {
                gid,
                service,
                conflicting,
            } => write!(f, "rejected {gid} ({service}): cycle witness {conflicting}"),
            TraceEvent::ActivityFailed { gid, service } => {
                write!(f, "failed {gid} ({service})")
            }
            TraceEvent::CommitDeferred { gid, blockers } => {
                write!(f, "commit of {gid} deferred behind [{}]", pids(blockers))
            }
            TraceEvent::CommitReleased { gid } => write!(f, "commit of {gid} released"),
            TraceEvent::CompensationStarted { gid, service } => {
                write!(f, "compensating {gid} ({service})")
            }
            TraceEvent::CompletionBlocked { pid, wait_for } => {
                write!(f, "completion of {pid} gated on [{}]", pids(wait_for))
            }
            TraceEvent::CommitBlocked { pid, wait_for } => {
                write!(f, "commit of {pid} waiting on [{}]", pids(wait_for))
            }
            TraceEvent::CertifyOutcome {
                event,
                ok,
                frontier,
            } => write!(
                f,
                "certify {event}: {} (frontier {frontier})",
                if *ok { "ok" } else { "NOT PRED" }
            ),
            TraceEvent::AbortStarted { pid, reason } => {
                write!(f, "abort of {pid} started: {reason}")
            }
            TraceEvent::GroupAbort {
                initiator,
                victims,
                trigger,
            } => {
                write!(f, "group abort [{}]", pids(victims))?;
                match initiator {
                    Some(p) => write!(f, " for initiator {p}")?,
                    None => write!(f, " by recovery")?,
                }
                if let Some(g) = trigger {
                    write!(f, " (trigger {g})")?;
                }
                Ok(())
            }
            TraceEvent::ProcessCommitted { pid } => write!(f, "{pid} committed"),
            TraceEvent::ProcessAborted { pid } => write!(f, "{pid} aborted"),
        }
    }
}

/// One journal entry: a [`TraceEvent`] stamped with its causal position.
///
/// `seq` is the emission order within the run, `time` the driver's virtual
/// time (the engine's simulated clock; drivers without a clock stamp logical
/// time), and `history_len` the length of the schedule history at emission —
/// i.e. the history prefix the decision was taken against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Emission sequence number (dense, 0-based).
    pub seq: u64,
    /// Virtual time of the decision.
    pub time: u64,
    /// History length when the decision was taken. In sharded drivers this
    /// is the *shard-local* history prefix the decision was certified
    /// against (the global merged history interleaves shard segments).
    pub history_len: usize,
    /// Conflict-domain shard that served the decision (`None` for
    /// single-state drivers such as the virtual-time engine).
    pub shard: Option<u32>,
    /// Worker that stepped the process (event-driven concurrent runtime
    /// only; `None` elsewhere). Additive in trace schema v5 — absent in
    /// v4 JSONL and defaulted on read.
    #[serde(default)]
    pub worker: Option<u32>,
    /// The decision.
    pub event: TraceEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.shard {
            Some(s) => write!(
                f,
                "[{:>5}] t={:<6} h={:<4} s{:<3} {}",
                self.seq, self.time, self.history_len, s, self.event
            ),
            None => write!(
                f,
                "[{:>5}] t={:<6} h={:<4} {}",
                self.seq, self.time, self.history_len, self.event
            ),
        }
    }
}

/// Receiver of trace records.
///
/// Contract: `record` is called at most once per decision, in decision order
/// per driver; callers MUST consult [`TraceSink::enabled`] before building a
/// record so that a disabled sink costs one branch and nothing else. Sinks
/// must be `Send` so the concurrent driver can share them behind its global
/// lock.
pub trait TraceSink: Send {
    /// Whether records should be built and delivered at all.
    fn enabled(&self) -> bool {
        true
    }
    /// Deliver one record.
    fn record(&mut self, rec: TraceRecord);
    /// Epoch boundary: a buffering sink pushes everything it holds to its
    /// backing store. Drivers call this when an epoch closes; the default is
    /// a no-op because most sinks deliver on `record`.
    fn flush(&mut self) {}
}

/// The default sink: disabled, discards everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _rec: TraceRecord) {}
}

/// A shared, growable in-memory journal. Cloning yields another handle onto
/// the same buffer, so a caller can keep one handle while the driver owns the
/// other — the usual way to read a trace back after a run.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    inner: Arc<Mutex<Vec<TraceRecord>>>,
}

impl Journal {
    /// New empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// A panicking traced run must not poison the journal for the reader:
    /// records are appended atomically (one `Vec::push` under the lock), so
    /// the buffer is consistent at every panic point — recover the guard.
    fn guard(&self) -> std::sync::MutexGuard<'_, Vec<TraceRecord>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copy of all records so far.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.guard().clone()
    }

    /// Drain all records, leaving the journal empty.
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut *self.guard())
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether no records were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for Journal {
    fn record(&mut self, rec: TraceRecord) {
        self.guard().push(rec);
    }
}

#[derive(Debug)]
struct RingInner {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

/// A bounded shared journal keeping only the most recent `cap` records —
/// the flight-recorder mode for long runs. Cloning yields another handle.
#[derive(Debug, Clone)]
pub struct RingSink {
    inner: Arc<Mutex<RingInner>>,
}

impl RingSink {
    /// New ring holding at most `cap` records (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RingInner {
                cap: cap.max(1),
                buf: VecDeque::with_capacity(cap.clamp(1, 4096)),
                dropped: 0,
            })),
        }
    }

    /// Poison-tolerant lock: ring mutations keep the buffer consistent at
    /// every panic point, so a crashed producer leaves a readable ring.
    fn guard(&self) -> std::sync::MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let g = self.guard();
        g.buf.iter().cloned().collect()
    }

    /// Number of records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.guard().dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: TraceRecord) {
        let mut g = self.guard();
        if g.buf.len() == g.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(rec);
    }
}

/// A streaming JSON-lines writer: one JSON object per record per line.
/// Records that fail to serialize or write are counted, not propagated —
/// tracing must never fail the traced run.
///
/// Records are serialized into an internal buffer and written out `batch`
/// records at a time (one syscall per batch instead of one per record — the
/// old per-record `writeln!` dominated traced runs on buffered files).
/// Drivers additionally flush at epoch boundaries via [`TraceSink::flush`],
/// and the sink flushes on drop, so early termination loses nothing.
pub struct JsonlSink<W: Write + Send> {
    /// `Some` until `into_inner`; the `Option` lets `Drop` and `into_inner`
    /// coexist (drop of a hollowed-out sink is a no-op).
    w: Option<W>,
    buf: String,
    pending: u64,
    batch: usize,
    errors: u64,
}

/// Default record batch per write for [`JsonlSink`].
pub const JSONL_BATCH: usize = 64;

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer, flushing every [`JSONL_BATCH`] records.
    pub fn new(w: W) -> Self {
        Self::with_batch(w, JSONL_BATCH)
    }

    /// Wrap a writer, flushing every `batch` records (`batch` ≥ 1; 1
    /// restores the old write-per-record behaviour).
    pub fn with_batch(w: W, batch: usize) -> Self {
        Self {
            w: Some(w),
            buf: String::new(),
            pending: 0,
            batch: batch.max(1),
            errors: 0,
        }
    }

    /// Number of records lost to serialization or I/O errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Buffered records not yet handed to the writer.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let w = self.w.as_mut().expect("writer taken only by into_inner");
        if w.write_all(self.buf.as_bytes()).is_err() {
            self.errors += self.pending;
        }
        self.buf.clear();
        self.pending = 0;
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        self.flush_buf();
        let mut w = self.w.take().expect("writer taken only by into_inner");
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: TraceRecord) {
        match serde_json::to_string(&rec) {
            Ok(line) => {
                self.buf.push_str(&line);
                self.buf.push('\n');
                self.pending += 1;
                if self.pending >= self.batch as u64 {
                    self.flush_buf();
                }
            }
            Err(_) => self.errors += 1,
        }
    }

    fn flush(&mut self) {
        self.flush_buf();
        if let Some(w) = self.w.as_mut() {
            let _ = w.flush();
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if self.w.is_some() {
            // This drop also runs while unwinding a panicked run; the final
            // flush must not double-panic (abort) if the writer is backed
            // by a lock the panicking thread poisoned. Swallow a secondary
            // panic — the primary keeps propagating, and everything the
            // writer accepted before it stays on disk.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.flush_buf();
                if let Some(w) = self.w.as_mut() {
                    let _ = w.flush();
                }
            }));
        }
    }
}

/// A sampling wrapper around any sink: keeps the records of 1-in-N
/// processes (those with `pid % n == 0`) plus every record that names no
/// process (group aborts initiated by recovery). Selecting by pid rather
/// than by record keeps a sampled process's decision chain complete, so
/// `explain_process` still works on the sampled journal.
pub struct SampleSink<S> {
    inner: S,
    n: u32,
    dropped: u64,
}

impl<S: TraceSink> SampleSink<S> {
    /// Keep 1-in-`n` processes' records (`n` ≥ 1; `n == 1` keeps all).
    pub fn new(inner: S, n: u32) -> Self {
        Self {
            inner,
            n: n.max(1),
            dropped: 0,
        }
    }

    /// Number of records dropped by sampling.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Unwrap the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for SampleSink<S> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, rec: TraceRecord) {
        match rec.event.pid() {
            Some(pid) if pid.0 % self.n != 0 => self.dropped += 1,
            _ => self.inner.record(rec),
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// Serialize a journal to JSON-lines (one record per line).
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        if let Ok(line) = serde_json::to_string(rec) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Parse a JSON-lines journal back into records (blank lines skipped).
pub fn from_jsonl(s: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

fn map(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Export a journal as Chrome-trace JSON (the `chrome://tracing` /
/// [Perfetto] "traceEvents" array format).
///
/// Each process gets its own lane (`tid`) in the "processes" group
/// (`pid:1`); every decision is an instant event, and every blocked
/// interval — from a `RequestBlocked` to the next decision the same process
/// makes — becomes a complete (`ph:"X"`) span so wait time is visible at a
/// glance. Records stamped by the sharded runtimes additionally appear in a
/// "shards" group (`pid:2`, one lane per conflict-domain shard) and — for
/// the event-driven runtime — a "workers" group (`pid:3`, one lane per
/// worker), so per-shard contention and per-worker load are visible
/// side-by-side with the per-process view. Timestamps are the journal's
/// virtual times, interpreted as microseconds.
///
/// [Perfetto]: https://ui.perfetto.dev
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    const PROCESS_GROUP: u64 = 1;
    const SHARD_GROUP: u64 = 2;
    const WORKER_GROUP: u64 = 3;
    let mut events: Vec<Value> = Vec::new();
    let mut shards: Vec<u32> = Vec::new();
    let mut workers: Vec<u32> = Vec::new();
    for rec in records {
        let Some(pid) = rec.event.pid() else { continue };
        // Mirror the decision into the shard / worker lane groups.
        for (group, lane, lanes) in [
            (SHARD_GROUP, rec.shard, &mut shards),
            (WORKER_GROUP, rec.worker, &mut workers),
        ] {
            let Some(lane) = lane else { continue };
            lanes.push(lane);
            events.push(map(vec![
                ("name", Value::Str(rec.event.kind().to_string())),
                ("ph", Value::Str("i".into())),
                ("s", Value::Str("t".into())),
                ("ts", Value::U64(rec.time)),
                ("pid", Value::U64(group)),
                ("tid", Value::U64(lane as u64)),
                (
                    "args",
                    map(vec![
                        ("seq", Value::U64(rec.seq)),
                        ("process", Value::U64(pid.0 as u64)),
                        ("detail", Value::Str(rec.event.to_string())),
                    ]),
                ),
            ]));
        }
        events.push(map(vec![
            ("name", Value::Str(rec.event.kind().to_string())),
            ("ph", Value::Str("i".into())),
            ("s", Value::Str("t".into())),
            ("ts", Value::U64(rec.time)),
            ("pid", Value::U64(PROCESS_GROUP)),
            ("tid", Value::U64(pid.0 as u64)),
            (
                "args",
                map(vec![
                    ("seq", Value::U64(rec.seq)),
                    ("history_len", Value::U64(rec.history_len as u64)),
                    ("detail", Value::Str(rec.event.to_string())),
                ]),
            ),
        ]));
        // Blocked span: closes at the same process's next decision.
        if let TraceEvent::RequestBlocked { gid, blockers, .. } = &rec.event {
            let end = records
                .iter()
                .filter(|r| r.seq > rec.seq && r.event.pid() == Some(pid))
                .map(|r| r.time)
                .next()
                .unwrap_or(rec.time);
            events.push(map(vec![
                ("name", Value::Str(format!("blocked {gid}"))),
                ("ph", Value::Str("X".into())),
                ("ts", Value::U64(rec.time)),
                ("dur", Value::U64(end.saturating_sub(rec.time).max(1))),
                ("pid", Value::U64(PROCESS_GROUP)),
                ("tid", Value::U64(pid.0 as u64)),
                (
                    "args",
                    map(vec![(
                        "blockers",
                        Value::Str(
                            blockers
                                .iter()
                                .map(|p| p.to_string())
                                .collect::<Vec<_>>()
                                .join(","),
                        ),
                    )]),
                ),
            ]));
        }
    }
    // Lane names.
    let mut pids: Vec<u32> = records
        .iter()
        .filter_map(|r| r.event.pid())
        .map(|p| p.0)
        .collect();
    pids.sort_unstable();
    pids.dedup();
    for p in pids {
        events.push(map(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(PROCESS_GROUP)),
            ("tid", Value::U64(p as u64)),
            ("args", map(vec![("name", Value::Str(format!("P{p}")))])),
        ]));
    }
    // Shard / worker lane groups: a process_name per group and a
    // thread_name per lane, emitted only when any record used the group.
    for (group, group_name, lane_prefix, mut lanes) in [
        (SHARD_GROUP, "shards", "shard", shards),
        (WORKER_GROUP, "workers", "worker", workers),
    ] {
        lanes.sort_unstable();
        lanes.dedup();
        if lanes.is_empty() {
            continue;
        }
        events.push(map(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(group)),
            (
                "args",
                map(vec![("name", Value::Str(group_name.to_string()))]),
            ),
        ]));
        for lane in lanes {
            events.push(map(vec![
                ("name", Value::Str("thread_name".into())),
                ("ph", Value::Str("M".into())),
                ("pid", Value::U64(group)),
                ("tid", Value::U64(lane as u64)),
                (
                    "args",
                    map(vec![("name", Value::Str(format!("{lane_prefix} {lane}")))]),
                ),
            ]));
        }
    }
    let root = map(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    serde_json::to_string(&root).unwrap_or_else(|_| "{\"traceEvents\":[]}".into())
}

/// Explain a process's fate by walking the journal: its own decision chain in
/// order, then the abort causality (reason, group-abort membership, and — for
/// cascades — one level of the initiator's own cause).
pub fn explain_process(records: &[TraceRecord], pid: ProcessId) -> String {
    let mut out = String::new();
    let fate = records
        .iter()
        .rev()
        .find_map(|r| match &r.event {
            TraceEvent::ProcessCommitted { pid: p } if *p == pid => Some("committed"),
            TraceEvent::ProcessAborted { pid: p } if *p == pid => Some("aborted"),
            _ => None,
        })
        .unwrap_or("still active / never seen");
    out.push_str(&format!("{pid}: {fate}\n"));

    let own: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.event.pid() == Some(pid) || r.event.mentions(pid))
        .collect();
    if own.is_empty() {
        out.push_str("  no trace records mention this process\n");
        return out;
    }
    out.push_str("  decision chain:\n");
    for r in &own {
        let marker = if r.event.pid() == Some(pid) {
            "•"
        } else {
            "◦"
        };
        out.push_str(&format!("  {marker} {r}\n"));
    }

    // Abort causality.
    if let Some(abort) = records.iter().rev().find_map(|r| match &r.event {
        TraceEvent::AbortStarted { pid: p, reason } if *p == pid => Some((r, *reason)),
        _ => None,
    }) {
        let (rec, reason) = abort;
        out.push_str(&format!(
            "  why aborted: {reason} (at t={}, h={})\n",
            rec.time, rec.history_len
        ));
        match reason {
            AbortReason::Cascade => {
                if let Some((grec, initiator, trigger)) =
                    records.iter().find_map(|r| match &r.event {
                        TraceEvent::GroupAbort {
                            initiator,
                            victims,
                            trigger,
                        } if victims.contains(&pid) => Some((r, *initiator, *trigger)),
                        _ => None,
                    })
                {
                    match initiator {
                        Some(init) => {
                            out.push_str(&format!(
                                "  cascade: victim of {init}'s group abort{} (seq {})\n",
                                trigger
                                    .map(|g| format!(", triggered by {g}"))
                                    .unwrap_or_default(),
                                grec.seq
                            ));
                            if let Some(cause) = records.iter().rev().find_map(|r| match &r.event {
                                TraceEvent::AbortStarted { pid: p, reason } if *p == init => {
                                    Some(*reason)
                                }
                                _ => None,
                            }) {
                                out.push_str(&format!("  root cause: {init} aborted — {cause}\n"));
                            }
                        }
                        None => out.push_str("  cascade: aborted by crash recovery\n"),
                    }
                }
            }
            AbortReason::Rejected => {
                if let Some(r) = own.iter().rev().find(|r| {
                    matches!(&r.event, TraceEvent::RequestRejected { gid, .. } if gid.process == pid)
                }) {
                    out.push_str(&format!("  rejection: {}\n", r.event));
                }
            }
            AbortReason::Failure => {
                if let Some(r) = own.iter().rev().find(|r| {
                    matches!(&r.event, TraceEvent::ActivityFailed { gid, .. } if gid.process == pid)
                }) {
                    out.push_str(&format!("  failure: {}\n", r.event));
                }
            }
            _ => {}
        }
    }
    out
}

/// Explain why an operation was blocked: every block decision recorded for
/// `gid`, with the blocking owners and how (whether) it was finally admitted.
pub fn explain_op(records: &[TraceRecord], gid: GlobalActivityId) -> String {
    let mut out = String::new();
    let mut seen = false;
    for r in records {
        match &r.event {
            TraceEvent::RequestBlocked {
                gid: g, blockers, ..
            } if *g == gid => {
                seen = true;
                out.push_str(&format!(
                    "{gid} blocked at t={} h={} on [{}]\n",
                    r.time,
                    r.history_len,
                    blockers
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            TraceEvent::RequestAdmitted {
                gid: g, deferred, ..
            } if *g == gid => {
                seen = true;
                out.push_str(&format!(
                    "{gid} admitted at t={} h={}{}\n",
                    r.time,
                    r.history_len,
                    if *deferred { " (deferred)" } else { "" }
                ));
            }
            TraceEvent::RequestRejected {
                gid: g,
                conflicting,
                ..
            } if *g == gid => {
                seen = true;
                out.push_str(&format!(
                    "{gid} rejected at t={} h={}: cycle witness {conflicting}\n",
                    r.time, r.history_len
                ));
            }
            _ => {}
        }
    }
    if !seen {
        out.push_str(&format!("no admission decisions recorded for {gid}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ActivityId, GlobalActivityId, ProcessId, ServiceId};

    fn gid(p: u32, a: u32) -> GlobalActivityId {
        GlobalActivityId {
            process: ProcessId(p),
            activity: ActivityId(a),
        }
    }

    fn fixture() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                seq: 0,
                time: 1,
                history_len: 0,
                shard: None,
                worker: None,
                event: TraceEvent::RequestAdmitted {
                    gid: gid(1, 0),
                    service: ServiceId(3),
                    deferred: false,
                    blockers: vec![],
                    edges_added: vec![],
                },
            },
            TraceRecord {
                seq: 1,
                time: 2,
                history_len: 1,
                shard: None,
                worker: None,
                event: TraceEvent::RequestBlocked {
                    gid: gid(2, 0),
                    service: ServiceId(3),
                    blockers: vec![ProcessId(1)],
                },
            },
            TraceRecord {
                seq: 2,
                time: 5,
                history_len: 1,
                shard: None,
                worker: None,
                event: TraceEvent::RequestAdmitted {
                    gid: gid(2, 0),
                    service: ServiceId(3),
                    deferred: true,
                    blockers: vec![ProcessId(1)],
                    edges_added: vec![(ProcessId(1), ProcessId(2))],
                },
            },
            TraceRecord {
                seq: 3,
                time: 6,
                history_len: 2,
                shard: None,
                worker: None,
                event: TraceEvent::AbortStarted {
                    pid: ProcessId(2),
                    reason: AbortReason::Cascade,
                },
            },
            TraceRecord {
                seq: 4,
                time: 6,
                history_len: 2,
                shard: None,
                worker: None,
                event: TraceEvent::GroupAbort {
                    initiator: Some(ProcessId(1)),
                    victims: vec![ProcessId(2)],
                    trigger: Some(gid(1, 1)),
                },
            },
            TraceRecord {
                seq: 5,
                time: 7,
                history_len: 3,
                shard: None,
                worker: None,
                event: TraceEvent::ProcessAborted { pid: ProcessId(2) },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let recs = fixture();
        let jsonl = to_jsonl(&recs);
        assert_eq!(jsonl.lines().count(), recs.len());
        let back = from_jsonl(&jsonl).unwrap();
        assert_eq!(back, recs);
    }

    /// A writer whose bytes stay observable after the sink is gone.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_batches_writes() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::with_batch(buf.clone(), 4);
        let recs = fixture();
        for rec in &recs[..3] {
            sink.record(rec.clone());
        }
        // Below the batch size: nothing written yet, records held.
        assert_eq!(buf.0.lock().unwrap().len(), 0);
        assert_eq!(sink.pending(), 3);
        sink.record(recs[3].clone());
        // Fourth record closes the batch: one write for all four.
        assert_eq!(sink.pending(), 0);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(from_jsonl(&text).unwrap(), recs[..4]);
        assert_eq!(sink.errors(), 0);
    }

    #[test]
    fn jsonl_sink_flush_drains_partial_epoch() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::with_batch(buf.clone(), 1024);
        let recs = fixture();
        for rec in &recs {
            sink.record(rec.clone());
        }
        assert_eq!(buf.0.lock().unwrap().len(), 0);
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(from_jsonl(&text).unwrap(), recs);
    }

    #[test]
    fn jsonl_sink_loses_nothing_on_early_termination() {
        // Drop the sink with a partially filled batch — the moral equivalent
        // of a run ending (or unwinding) mid-epoch — and round-trip the
        // bytes: every record must be on disk.
        let buf = SharedBuf::default();
        let recs = fixture();
        {
            let mut sink = JsonlSink::with_batch(buf.clone(), 1024);
            for rec in &recs {
                sink.record(rec.clone());
            }
            assert_eq!(sink.pending(), recs.len() as u64);
            // No into_inner, no flush: the sink is simply dropped.
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(from_jsonl(&text).unwrap(), recs);
    }

    #[test]
    fn journal_and_ring_survive_a_poisoning_panic() {
        // A worker that dies while holding the journal lock poisons the std
        // mutex; the surviving handles must keep reading and writing — the
        // push/pop mutations are atomic, so the buffer is always coherent.
        let journal = Journal::new();
        let ring = RingSink::new(8);
        let (j, r) = (journal.clone(), ring.clone());
        std::thread::spawn(move || {
            let _jg = j.inner.lock().unwrap();
            let _rg = r.inner.lock().unwrap();
            panic!("simulated worker crash");
        })
        .join()
        .unwrap_err();
        let recs = fixture();
        let mut j = journal.clone();
        let mut r = ring.clone();
        j.record(recs[0].clone());
        r.record(recs[0].clone());
        assert_eq!(journal.snapshot(), recs[..1]);
        assert_eq!(ring.snapshot(), recs[..1]);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(journal.take(), recs[..1]);
        assert!(journal.is_empty());
    }

    /// A writer backed by a lock a panicking run poisoned: every write
    /// observes the poison the way `Arc<Mutex<W>>` writers do.
    struct PoisonedWriter(std::sync::Arc<Mutex<Vec<u8>>>);

    impl Write for PoisonedWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_drop_through_poisoned_writer_leaves_prefix_complete_tail() {
        let shared = std::sync::Arc::new(Mutex::new(Vec::new()));
        let recs = fixture();
        // Two records land before the crash (batch 2 → one completed
        // write); the rest sit in the sink's buffer when the writer's lock
        // gets poisoned and the sink is dropped by the unwinding run.
        let mut sink = JsonlSink::with_batch(PoisonedWriter(shared.clone()), 2);
        for rec in &recs[..3] {
            sink.record(rec.clone());
        }
        let s = shared.clone();
        std::thread::spawn(move || {
            let _g = s.lock().unwrap();
            panic!("simulated crash mid-run");
        })
        .join()
        .unwrap_err();
        // Dropping the sink now hits the poisoned lock. The drop guard must
        // swallow the secondary panic instead of aborting the process.
        drop(sink);
        let bytes = shared.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let text = String::from_utf8(bytes).unwrap();
        // The tail is a parseable, prefix-complete journal: exactly the
        // records whose batch completed before the crash, nothing torn.
        assert_eq!(from_jsonl(&text).unwrap(), recs[..2]);
    }

    #[test]
    fn jsonl_sink_into_inner_flushes_once() {
        let recs = fixture();
        let mut sink = JsonlSink::new(Vec::new());
        for rec in &recs {
            sink.record(rec.clone());
        }
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(from_jsonl(&text).unwrap(), recs);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = RingSink::new(3);
        let mut handle = ring.clone();
        for rec in fixture() {
            handle.record(rec);
        }
        let kept = ring.snapshot();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].seq, 3);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn journal_handles_share_buffer() {
        let journal = Journal::new();
        let mut sink = journal.clone();
        for rec in fixture() {
            sink.record(rec);
        }
        assert_eq!(journal.len(), 6);
        let taken = journal.take();
        assert_eq!(taken.len(), 6);
        assert!(journal.is_empty());
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        assert!(Journal::new().enabled());
    }

    #[test]
    fn chrome_trace_has_lanes_and_blocked_span() {
        let out = chrome_trace(&fixture());
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("thread_name"));
        assert!(out.contains("blocked a2_0"));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"tid\":2"));
    }

    #[test]
    fn chrome_trace_mirrors_shard_and_worker_lanes() {
        let mut recs = fixture();
        recs[0].shard = Some(0);
        recs[0].worker = Some(1);
        recs[2].shard = Some(3);
        let out = chrome_trace(&recs);
        // Group names and lane names for the stamped records.
        assert!(out.contains("\"shards\""));
        assert!(out.contains("\"workers\""));
        assert!(out.contains("shard 0"));
        assert!(out.contains("shard 3"));
        assert!(out.contains("worker 1"));
        // Mirrored instant events land in the group pids.
        assert!(out.contains("\"pid\":2"));
        assert!(out.contains("\"pid\":3"));
        // Unstamped journals emit no extra groups.
        let plain = chrome_trace(&fixture());
        assert!(!plain.contains("\"shards\""));
        assert!(!plain.contains("\"workers\""));
    }

    #[test]
    fn sample_sink_keeps_whole_process_chains() {
        // Keep 1-in-2 processes: P2's records (2 % 2 == 0) survive, P1's
        // are dropped — but the recovery-initiated GroupAbort (no actor)
        // would always be kept.
        let journal = Journal::new();
        let mut sink = SampleSink::new(journal.clone(), 2);
        for rec in fixture() {
            sink.record(rec);
        }
        let kept = journal.snapshot();
        assert!(!kept.is_empty());
        assert!(kept
            .iter()
            .all(|r| r.event.pid().map(|p| p.0 % 2 == 0).unwrap_or(true)));
        // P2's full chain survived: blocked, admitted, aborted.
        assert!(kept.len() >= 4);
        assert_eq!(sink.dropped() as usize, fixture().len() - kept.len());
        // n == 1 keeps everything.
        let all = Journal::new();
        let mut keep_all = SampleSink::new(all.clone(), 1);
        for rec in fixture() {
            keep_all.record(rec);
        }
        assert_eq!(all.len(), fixture().len());
    }

    #[test]
    fn explain_walks_cascade_to_root_cause() {
        let out = explain_process(&fixture(), ProcessId(2));
        assert!(out.contains("P2: aborted"));
        assert!(out.contains("cascaded from another abort"));
        assert!(out.contains("victim of P1's group abort"));
        assert!(out.contains("triggered by a1_1"));
    }

    #[test]
    fn explain_op_reports_block_then_admit() {
        let out = explain_op(&fixture(), gid(2, 0));
        assert!(out.contains("blocked at t=2"));
        assert!(out.contains("admitted at t=5"));
        assert!(out.contains("(deferred)"));
    }
}
