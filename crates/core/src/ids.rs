//! Strongly-typed identifiers for the process model.
//!
//! The paper works with three kinds of named entities:
//!
//! * *services* — the members of the global service set Â provided by the
//!   transactional subsystems (§3.1),
//! * *processes* — transactional processes `P_i` (Definition 5),
//! * *activities* — invocations of services inside a process, written
//!   `a_{i_k}` where `i` is the process id and `k` the activity id local to
//!   the process.
//!
//! Each gets its own newtype so the type system rules out mixing them up.
//! All ids are small integers; human-readable names live in the
//! [`Catalog`](crate::activity::Catalog) and [`Process`](crate::process::Process)
//! definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a service in the global service set Â.
///
/// Compensating services (`a⁻¹`) are ordinary members of Â with their own
/// `ServiceId`; the [`Catalog`](crate::activity::Catalog) records the link to
/// their base service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

/// Identifier of a transactional process `P_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

/// Identifier of an activity local to one process: the `k` in `a_{i_k}`.
///
/// It doubles as the index into [`Process::activities`](crate::process::Process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivityId(pub u32);

/// Globally unique activity identifier: the full `a_{i_k}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalActivityId {
    /// The process the activity belongs to (the `i` in `a_{i_k}`).
    pub process: ProcessId,
    /// The activity id within that process (the `k` in `a_{i_k}`).
    pub activity: ActivityId,
}

impl GlobalActivityId {
    /// Convenience constructor.
    pub const fn new(process: ProcessId, activity: ActivityId) -> Self {
        Self { process, activity }
    }
}

impl ServiceId {
    /// The raw index, usable for dense tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl ProcessId {
    /// The raw index, usable for dense tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl ActivityId {
    /// The raw index into the owning process's activity table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for GlobalActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the paper's subscript convention `a_{i_k}`.
        write!(f, "a{}_{}", self.process.0, self.activity.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn display_matches_paper_convention() {
        let gid = GlobalActivityId::new(ProcessId(1), ActivityId(3));
        assert_eq!(gid.to_string(), "a1_3");
        assert_eq!(ProcessId(2).to_string(), "P2");
        assert_eq!(ActivityId(7).to_string(), "a7");
        assert_eq!(ServiceId(4).to_string(), "svc4");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = BTreeSet::new();
        set.insert(GlobalActivityId::new(ProcessId(1), ActivityId(2)));
        set.insert(GlobalActivityId::new(ProcessId(1), ActivityId(1)));
        set.insert(GlobalActivityId::new(ProcessId(0), ActivityId(9)));
        let v: Vec<_> = set.into_iter().collect();
        assert_eq!(
            v,
            vec![
                GlobalActivityId::new(ProcessId(0), ActivityId(9)),
                GlobalActivityId::new(ProcessId(1), ActivityId(1)),
                GlobalActivityId::new(ProcessId(1), ActivityId(2)),
            ]
        );
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ServiceId(5).index(), 5);
        assert_eq!(ProcessId(6).index(), 6);
        assert_eq!(ActivityId(7).index(), 7);
    }

    #[test]
    fn ids_implement_serde_traits() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<ServiceId>();
        assert_serde::<ProcessId>();
        assert_serde::<ActivityId>();
        assert_serde::<GlobalActivityId>();
    }
}
