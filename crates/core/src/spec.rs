//! The static world a scheduler operates in: the service catalog Â, the
//! declared commutativity relation, and the registered process definitions.

use crate::activity::Catalog;
use crate::conflict::{ConflictMatrix, ConflictOracle};
use crate::error::ModelError;
use crate::ids::{GlobalActivityId, ProcessId, ServiceId};
use crate::process::Process;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Catalog + conflict relation + process definitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Spec {
    /// The global service set Â.
    pub catalog: Catalog,
    /// The declared conflict relation over Â.
    pub conflicts: ConflictMatrix,
    processes: BTreeMap<ProcessId, Process>,
}

impl Spec {
    /// Creates a spec without processes.
    pub fn new(catalog: Catalog, conflicts: ConflictMatrix) -> Self {
        Self {
            catalog,
            conflicts,
            processes: BTreeMap::new(),
        }
    }

    /// Registers a process definition.
    pub fn add_process(&mut self, process: Process) {
        self.processes.insert(process.id, process);
    }

    /// Looks up a process.
    pub fn process(&self, id: ProcessId) -> Result<&Process, ModelError> {
        self.processes
            .get(&id)
            .ok_or(ModelError::UnknownProcess(id))
    }

    /// Iterates over registered processes in id order.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Number of registered processes.
    pub fn process_count(&self) -> usize {
        self.processes.len()
    }

    /// The conflict oracle view.
    pub fn oracle(&self) -> ConflictOracle<'_> {
        ConflictOracle::new(&self.catalog, &self.conflicts)
    }

    /// The service invoked by a (validated) global activity id.
    pub fn service_of(&self, gid: GlobalActivityId) -> Result<ServiceId, ModelError> {
        let p = self.process(gid.process)?;
        if gid.activity.index() >= p.len() {
            return Err(ModelError::UnknownActivity(gid));
        }
        Ok(p.service(gid.activity))
    }

    /// Whether two global activities conflict, honouring perfect
    /// commutativity (the query may reference either the base or the
    /// compensating side of each activity via `comp` flags).
    pub fn activities_conflict(
        &self,
        a: GlobalActivityId,
        b: GlobalActivityId,
    ) -> Result<bool, ModelError> {
        let (sa, sb) = (self.service_of(a)?, self.service_of(b)?);
        Ok(self.conflicts.conflict(&self.catalog, sa, sb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::ActivityId;

    #[test]
    fn paper_world_registers_three_processes() {
        let fx = fixtures::paper_world();
        assert_eq!(fx.spec.process_count(), 3);
        assert!(fx.spec.process(ProcessId(1)).is_ok());
        assert!(fx.spec.process(ProcessId(9)).is_err());
    }

    #[test]
    fn declared_conflicts_visible_through_spec() {
        // Figure 4: (a1_1, a2_1), (a1_2, a2_4), (a1_5, a2_5) do not commute.
        let fx = fixtures::paper_world();
        assert!(fx.spec.activities_conflict(fx.a(1, 1), fx.a(2, 1)).unwrap());
        assert!(fx.spec.activities_conflict(fx.a(1, 2), fx.a(2, 4)).unwrap());
        assert!(fx.spec.activities_conflict(fx.a(1, 5), fx.a(2, 5)).unwrap());
        assert!(!fx.spec.activities_conflict(fx.a(1, 3), fx.a(2, 2)).unwrap());
    }

    #[test]
    fn unknown_activity_rejected() {
        let fx = fixtures::paper_world();
        let bogus = GlobalActivityId::new(ProcessId(1), ActivityId(40));
        assert!(fx.spec.service_of(bogus).is_err());
    }
}
