//! Process composition: embedding subprocesses (the paper's stated future
//! work — "expand the framework … to identify transactional execution
//! guarantees of subprocesses").
//!
//! A subprocess is inlined into its parent: its activities are copied (with
//! prefixed names), its precedence and preference orders are preserved, and
//! the subprocess root is attached after a parent activity. Guaranteed
//! termination of the composition is *not* automatic — e.g. attaching a
//! subprocess that starts with compensatable activities after a committed
//! pivot is fine, but attaching one whose pivot can fail without an
//! alternative breaks the parent's guarantee. [`compose`] therefore returns
//! the [`crate::flex::FlexAnalysis`] of the result so callers
//! can check the guarantee of the whole, matching the paper's observation
//! that subprocess guarantees must be derived, not assumed.

use crate::activity::Catalog;
use crate::error::ModelError;
use crate::flex::FlexAnalysis;
use crate::ids::{ActivityId, ProcessId};
use crate::process::{Process, ProcessBuilder, Successors};

/// Where to attach an embedded subprocess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attach {
    /// Sequentially after the given parent activity (which must currently be
    /// terminal on its branch).
    After(ActivityId),
    /// As a lower-priority alternative of the given parent activity: the
    /// parent's current single successor becomes the preferred branch and
    /// the subprocess the fallback.
    AsFallbackOf(ActivityId),
}

/// Result of a composition.
#[derive(Debug, Clone)]
pub struct Composition {
    /// The composed process.
    pub process: Process,
    /// Mapping from subprocess activity ids to their ids in the composition.
    pub embedded: Vec<(ActivityId, ActivityId)>,
    /// Flex analysis of the composition (termination guarantee of the
    /// whole).
    pub analysis: FlexAnalysis,
}

/// Embeds `child` into `parent` at the given attachment point, producing a
/// new process under `new_id`.
pub fn compose(
    catalog: &Catalog,
    parent: &Process,
    child: &Process,
    attach: Attach,
    new_id: ProcessId,
) -> Result<Composition, ModelError> {
    let mut b = ProcessBuilder::new(new_id, format!("{}+{}", parent.name, child.name));
    // Copy parent activities (ids preserved: same insertion order).
    let mut parent_map = Vec::with_capacity(parent.len());
    for (_, def) in parent.iter() {
        parent_map.push(b.activity(def.name.clone(), def.service));
    }
    // Copy child activities with prefixed names.
    let mut child_map = Vec::with_capacity(child.len());
    for (_, def) in child.iter() {
        child_map.push(b.activity(format!("{}::{}", child.name, def.name), def.service));
    }
    // Parent structure.
    for (id, _) in parent.iter() {
        match parent.successors(id) {
            Successors::None => {}
            Successors::Seq(y) => {
                b.precede(parent_map[id.index()], parent_map[y.index()]);
            }
            Successors::Parallel(ys) => {
                for y in ys {
                    b.precede(parent_map[id.index()], parent_map[y.index()]);
                }
            }
            Successors::Alternatives(branches) => {
                let targets: Vec<ActivityId> =
                    branches.iter().map(|y| parent_map[y.index()]).collect();
                for t in &targets {
                    b.precede(parent_map[id.index()], *t);
                }
                b.alternatives(parent_map[id.index()], &targets);
            }
        }
    }
    // Child structure.
    for (id, _) in child.iter() {
        match child.successors(id) {
            Successors::None => {}
            Successors::Seq(y) => {
                b.precede(child_map[id.index()], child_map[y.index()]);
            }
            Successors::Parallel(ys) => {
                for y in ys {
                    b.precede(child_map[id.index()], child_map[y.index()]);
                }
            }
            Successors::Alternatives(branches) => {
                let targets: Vec<ActivityId> =
                    branches.iter().map(|y| child_map[y.index()]).collect();
                for t in &targets {
                    b.precede(child_map[id.index()], *t);
                }
                b.alternatives(child_map[id.index()], &targets);
            }
        }
    }
    // Attachment.
    let child_root = child
        .root()
        .map(|r| child_map[r.index()])
        .ok_or(ModelError::MultipleRoots(child.id))?;
    match attach {
        Attach::After(at) => {
            if at.index() >= parent.len() {
                return Err(ModelError::UnknownActivity(crate::ids::GlobalActivityId {
                    process: parent.id,
                    activity: at,
                }));
            }
            b.precede(parent_map[at.index()], child_root);
        }
        Attach::AsFallbackOf(at) => {
            if at.index() >= parent.len() {
                return Err(ModelError::UnknownActivity(crate::ids::GlobalActivityId {
                    process: parent.id,
                    activity: at,
                }));
            }
            let preferred = match parent.successors(at) {
                Successors::Seq(y) => parent_map[y.index()],
                _ => {
                    return Err(ModelError::PreferenceNotTotal {
                        process: parent.id,
                        source: at,
                    })
                }
            };
            b.precede(parent_map[at.index()], child_root);
            b.prefer(parent_map[at.index()], preferred, child_root);
        }
    }
    let process = b.build(catalog)?;
    let analysis = FlexAnalysis::analyze(&process, catalog);
    let embedded = child
        .iter()
        .map(|(id, _)| (id, child_map[id.index()]))
        .collect();
    Ok(Composition {
        process,
        embedded,
        analysis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessBuilder;

    fn catalog() -> (
        Catalog,
        crate::ids::ServiceId,
        crate::ids::ServiceId,
        crate::ids::ServiceId,
    ) {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let p = cat.pivot("p");
        let r = cat.retriable("r");
        (cat, c, p, r)
    }

    fn chain(cat: &Catalog, id: u32, name: &str, svcs: &[crate::ids::ServiceId]) -> Process {
        let mut b = ProcessBuilder::new(ProcessId(id), name);
        let acts: Vec<ActivityId> = svcs
            .iter()
            .enumerate()
            .map(|(i, &s)| b.activity(format!("a{i}"), s))
            .collect();
        b.chain(&acts);
        b.build(cat).unwrap()
    }

    #[test]
    fn sequential_embedding_preserves_guarantee() {
        // parent: c ≪ r ; child: c ≪ r — composed after the parent's tail.
        let (cat, c, _, r) = catalog();
        let parent = chain(&cat, 1, "parent", &[c, r]);
        let child = chain(&cat, 2, "child", &[r, r]);
        let comp = compose(
            &cat,
            &parent,
            &child,
            Attach::After(ActivityId(1)),
            ProcessId(3),
        )
        .unwrap();
        assert_eq!(comp.process.len(), 4);
        assert!(comp.analysis.has_guaranteed_termination());
        assert!(comp.process.find("child::a0").is_some());
        assert_eq!(comp.embedded.len(), 2);
    }

    #[test]
    fn embedding_failable_subprocess_after_pivot_breaks_guarantee() {
        // parent: c ≪ p ≪ r ...; attaching a subprocess whose own pivot can
        // fail (without alternatives) after the retriable tail breaks the
        // composition's guarantee — the paper's point that subprocess
        // guarantees must be re-derived.
        let (cat, c, p, r) = catalog();
        let parent = chain(&cat, 1, "parent", &[c, p, r]);
        let child = chain(&cat, 2, "child", &[c, p]);
        let comp = compose(
            &cat,
            &parent,
            &child,
            Attach::After(ActivityId(2)),
            ProcessId(3),
        )
        .unwrap();
        assert!(!comp.analysis.has_guaranteed_termination());
    }

    #[test]
    fn fallback_embedding_creates_alternatives() {
        // parent: c ≪ p ≪ c2-branch; child (all retriable) embedded as the
        // fallback of the pivot — exactly the recursive well-formed shape.
        let (cat, c, p, r) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(1), "parent");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        let a2 = b.activity("a2", c);
        let a3 = b.activity("a3", p);
        b.chain(&[a0, a1, a2, a3]);
        let parent = b.build(&cat).unwrap();
        // Parent alone is NOT guaranteed (inner pivot without fallback).
        assert!(!FlexAnalysis::analyze(&parent, &cat).has_guaranteed_termination());
        let child = chain(&cat, 2, "fallback", &[r, r]);
        let comp = compose(
            &cat,
            &parent,
            &child,
            Attach::AsFallbackOf(a1),
            ProcessId(3),
        )
        .unwrap();
        // With the all-retriable fallback, the composition is guaranteed.
        assert!(
            comp.analysis.has_guaranteed_termination(),
            "{:?}",
            comp.analysis
        );
        assert!(comp.analysis.strict_well_formed);
        match comp.process.successors(a1) {
            Successors::Alternatives(branches) => assert_eq!(branches.len(), 2),
            other => panic!("expected alternatives, got {other:?}"),
        }
    }

    #[test]
    fn fallback_of_terminal_activity_rejected() {
        let (cat, c, _, r) = catalog();
        let parent = chain(&cat, 1, "parent", &[c, r]);
        let child = chain(&cat, 2, "child", &[r]);
        let err = compose(
            &cat,
            &parent,
            &child,
            Attach::AsFallbackOf(ActivityId(1)),
            ProcessId(3),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::PreferenceNotTotal { .. }));
    }

    #[test]
    fn unknown_attachment_rejected() {
        let (cat, c, _, r) = catalog();
        let parent = chain(&cat, 1, "parent", &[c, r]);
        let child = chain(&cat, 2, "child", &[r]);
        let err = compose(
            &cat,
            &parent,
            &child,
            Attach::After(ActivityId(9)),
            ProcessId(3),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::UnknownActivity(_)));
    }

    #[test]
    fn nested_composition_twice() {
        let (cat, c, _, r) = catalog();
        let a = chain(&cat, 1, "a", &[c, r]);
        let b_ = chain(&cat, 2, "b", &[r]);
        let first = compose(&cat, &a, &b_, Attach::After(ActivityId(1)), ProcessId(3)).unwrap();
        let c_ = chain(&cat, 4, "c", &[r, r]);
        let second = compose(
            &cat,
            &first.process,
            &c_,
            Attach::After(ActivityId(2)),
            ProcessId(5),
        )
        .unwrap();
        assert_eq!(second.process.len(), 5);
        assert!(second.analysis.has_guaranteed_termination());
    }
}
