//! The process model: `P = (A, ≪, ◁)` (Definition 5).
//!
//! A process is a set of activities `A ⊆ Â`, a strict partial *precedence*
//! order `≪` (temporal: `a ≪ b` means `b` may only start after `a`
//! committed), and a *preference* order `◁` over pairs of precedence edges
//! with the same source. `◁` designates alternative execution paths: with
//! `(a_h ≪ a_j) ◁ (a_h ≪ a_k)`, branch `a_k` is executed only after branch
//! `a_j` failed (or succeeded and was compensated away because a later
//! activity on the `a_j` branch failed).
//!
//! Out-edges of one activity that are related by `◁` form an **alternative
//! group** totally ordered by preference; out-edges unrelated by `◁` are
//! parallel successors. The paper requires `◁` to be total wherever it
//! relates several connectors, which the builder's validation enforces.

use crate::activity::Catalog;
use crate::error::ModelError;
use crate::ids::{ActivityId, ProcessId, ServiceId};
use crate::order::PartialOrder;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One activity slot inside a process: a named invocation of a service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActivityDef {
    /// Human-readable name, e.g. `"a1_3"` or `"pdm_entry"`.
    pub name: String,
    /// The invoked service.
    pub service: ServiceId,
}

/// A precedence edge `from ≪ to` (declared, i.e. covering or redundant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source activity.
    pub from: ActivityId,
    /// Target activity.
    pub to: ActivityId,
}

/// The successor structure of one activity after validation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Successors {
    /// No successors: a terminal activity.
    None,
    /// A single unconditional successor.
    Seq(ActivityId),
    /// Several preference-ordered alternatives, highest priority first.
    Alternatives(Vec<ActivityId>),
    /// Several unconditional parallel successors (an AND-split).
    Parallel(Vec<ActivityId>),
}

impl Successors {
    /// All successor activities regardless of kind.
    pub fn all(&self) -> Vec<ActivityId> {
        match self {
            Successors::None => Vec::new(),
            Successors::Seq(a) => vec![*a],
            Successors::Alternatives(v) | Successors::Parallel(v) => v.clone(),
        }
    }
}

/// A transactional process `P = (A, ≪, ◁)` (Definition 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Process {
    /// Unique process identifier.
    pub id: ProcessId,
    /// Human-readable name.
    pub name: String,
    activities: Vec<ActivityDef>,
    edges: Vec<Edge>,
    /// Pairs `(i, j)` of indices into `edges`: `edges[i] ◁ edges[j]`.
    preference: Vec<(usize, usize)>,
    /// Computed successor structure (filled by `validate`).
    successors: Vec<Successors>,
    /// Computed predecessor lists.
    predecessors: Vec<Vec<ActivityId>>,
    /// The unique start activity if the process is rooted.
    root: Option<ActivityId>,
}

impl Process {
    /// Number of activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Whether the process has no activities.
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// The activity definition for a local id.
    pub fn activity(&self, id: ActivityId) -> &ActivityDef {
        &self.activities[id.index()]
    }

    /// The service invoked by an activity.
    #[inline]
    pub fn service(&self, id: ActivityId) -> ServiceId {
        self.activities[id.index()].service
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ActivityId, &ActivityDef)> {
        self.activities
            .iter()
            .enumerate()
            .map(|(i, d)| (ActivityId(i as u32), d))
    }

    /// Declared precedence edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Declared preference pairs as `(edge index, edge index)`.
    pub fn preference_pairs(&self) -> &[(usize, usize)] {
        &self.preference
    }

    /// The successor structure of an activity.
    pub fn successors(&self, id: ActivityId) -> &Successors {
        &self.successors[id.index()]
    }

    /// The direct predecessors of an activity.
    pub fn predecessors(&self, id: ActivityId) -> &[ActivityId] {
        &self.predecessors[id.index()]
    }

    /// The unique start activity, if any.
    pub fn root(&self) -> Option<ActivityId> {
        self.root
    }

    /// The precedence order `≪` as a [`PartialOrder`] over activity indices.
    pub fn precedence_order(&self) -> PartialOrder {
        let mut po = PartialOrder::new(self.len());
        for e in &self.edges {
            po.add(e.from.index(), e.to.index());
        }
        po
    }

    /// Finds an activity by name.
    pub fn find(&self, name: &str) -> Option<ActivityId> {
        self.iter()
            .find_map(|(id, def)| (def.name == name).then_some(id))
    }

    /// Whether the process is a tree: unique root and at most one predecessor
    /// per activity. The flex-structure analysis requires this shape.
    pub fn is_tree(&self) -> bool {
        self.root.is_some() && self.predecessors.iter().all(|p| p.len() <= 1)
    }
}

/// Fluent builder for [`Process`].
///
/// ```
/// use txproc_core::activity::Catalog;
/// use txproc_core::ids::ProcessId;
/// use txproc_core::process::ProcessBuilder;
///
/// let mut cat = Catalog::new();
/// let (design, _) = cat.compensatable("design");
/// let order = cat.pivot("order");
/// let notify = cat.retriable("notify");
///
/// let mut b = ProcessBuilder::new(ProcessId(1), "quickstart");
/// let a1 = b.activity("design", design);
/// let a2 = b.activity("order", order);
/// let a3 = b.activity("notify", notify);
/// b.precede(a1, a2);
/// b.precede(a2, a3);
/// let process = b.build(&cat).unwrap();
/// assert_eq!(process.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ProcessBuilder {
    id: ProcessId,
    name: String,
    activities: Vec<ActivityDef>,
    edges: Vec<Edge>,
    preference: Vec<(usize, usize)>,
}

impl ProcessBuilder {
    /// Starts building a process.
    pub fn new(id: ProcessId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            activities: Vec::new(),
            edges: Vec::new(),
            preference: Vec::new(),
        }
    }

    /// Adds an activity invoking `service`; returns its local id.
    pub fn activity(&mut self, name: impl Into<String>, service: ServiceId) -> ActivityId {
        let id = ActivityId(self.activities.len() as u32);
        self.activities.push(ActivityDef {
            name: name.into(),
            service,
        });
        id
    }

    /// Declares `from ≪ to`.
    pub fn precede(&mut self, from: ActivityId, to: ActivityId) -> &mut Self {
        self.edges.push(Edge { from, to });
        self
    }

    /// Declares a chain `a_0 ≪ a_1 ≪ … ≪ a_n`.
    pub fn chain(&mut self, activities: &[ActivityId]) -> &mut Self {
        for w in activities.windows(2) {
            self.precede(w[0], w[1]);
        }
        self
    }

    /// Declares `(source ≪ preferred) ◁ (source ≪ fallback)`: the `fallback`
    /// branch runs only after the `preferred` branch failed or was
    /// compensated away. Both edges must exist (or are created).
    pub fn prefer(
        &mut self,
        source: ActivityId,
        preferred: ActivityId,
        fallback: ActivityId,
    ) -> &mut Self {
        let e1 = self.edge_index_or_insert(source, preferred);
        let e2 = self.edge_index_or_insert(source, fallback);
        self.preference.push((e1, e2));
        self
    }

    /// Declares a full preference-ordered alternative group at `source`:
    /// `targets[0]` is tried first, then `targets[1]`, etc.
    pub fn alternatives(&mut self, source: ActivityId, targets: &[ActivityId]) -> &mut Self {
        for w in targets.windows(2) {
            self.prefer(source, w[0], w[1]);
        }
        self
    }

    fn edge_index_or_insert(&mut self, from: ActivityId, to: ActivityId) -> usize {
        if let Some(i) = self.edges.iter().position(|e| e.from == from && e.to == to) {
            i
        } else {
            self.edges.push(Edge { from, to });
            self.edges.len() - 1
        }
    }

    /// Validates the structure and produces the immutable [`Process`].
    pub fn build(self, catalog: &Catalog) -> Result<Process, ModelError> {
        let mut p = Process {
            id: self.id,
            name: self.name,
            activities: self.activities,
            edges: self.edges,
            preference: self.preference,
            successors: Vec::new(),
            predecessors: Vec::new(),
            root: None,
        };
        p.validate(catalog)?;
        Ok(p)
    }
}

impl Process {
    /// Validates Definition 5's requirements and computes the derived
    /// successor/predecessor structure.
    fn validate(&mut self, catalog: &Catalog) -> Result<(), ModelError> {
        if self.activities.is_empty() {
            return Err(ModelError::EmptyProcess(self.id));
        }
        // Services must exist and must not be compensating services: those
        // only appear in completions, never as process steps.
        for (id, def) in self.activities.iter().enumerate() {
            let sdef = catalog.get(def.service)?;
            if sdef.is_compensating() {
                return Err(ModelError::CompensatingServiceInProcess {
                    process: self.id,
                    activity: ActivityId(id as u32),
                    service: def.service,
                });
            }
        }
        // Edge endpoints must exist; no duplicates.
        let n = self.activities.len();
        let mut seen = std::collections::BTreeSet::new();
        for e in &self.edges {
            if e.from.index() >= n || e.to.index() >= n {
                return Err(ModelError::UnknownActivity(crate::ids::GlobalActivityId {
                    process: self.id,
                    activity: if e.from.index() >= n { e.from } else { e.to },
                }));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(ModelError::DuplicateEdge {
                    process: self.id,
                    source: e.from,
                    target: e.to,
                });
            }
        }
        // ≪ must be acyclic (and is irreflexive by PartialOrder's contract;
        // check before constructing to return a ModelError instead of
        // panicking).
        for e in &self.edges {
            if e.from == e.to {
                return Err(ModelError::PrecedenceCycle(self.id));
            }
        }
        if !self.precedence_order().is_acyclic() {
            return Err(ModelError::PrecedenceCycle(self.id));
        }
        // Preference pairs must reference existing edges sharing a source.
        for &(i, j) in &self.preference {
            let (ei, ej) = (self.edges[i], self.edges[j]);
            if ei.from != ej.from {
                return Err(ModelError::PreferenceSourceMismatch {
                    process: self.id,
                    first_source: ei.from,
                    second_source: ej.from,
                });
            }
        }
        self.compute_structure()?;
        Ok(())
    }

    /// Groups each activity's out-edges into parallel successors and
    /// preference-ordered alternative groups.
    fn compute_structure(&mut self) -> Result<(), ModelError> {
        let n = self.activities.len();
        self.predecessors = vec![Vec::new(); n];
        for e in &self.edges {
            self.predecessors[e.to.index()].push(e.from);
        }
        // Unique root: exactly one activity without predecessors.
        let roots: Vec<ActivityId> = (0..n)
            .filter(|&i| self.predecessors[i].is_empty())
            .map(|i| ActivityId(i as u32))
            .collect();
        self.root = (roots.len() == 1).then(|| roots[0]);

        self.successors = vec![Successors::None; n];
        // Out-edges per node, as edge indices.
        let mut out: BTreeMap<ActivityId, Vec<usize>> = BTreeMap::new();
        for (i, e) in self.edges.iter().enumerate() {
            out.entry(e.from).or_default().push(i);
        }
        for (src, edge_idxs) in out {
            // Build the ◁ relation restricted to this node's out-edges.
            let local: BTreeMap<usize, usize> =
                edge_idxs.iter().enumerate().map(|(k, &e)| (e, k)).collect();
            let m = edge_idxs.len();
            let mut po = PartialOrder::new(m);
            let mut related = vec![false; m];
            for &(i, j) in &self.preference {
                if let (Some(&a), Some(&b)) = (local.get(&i), local.get(&j)) {
                    if a == b {
                        return Err(ModelError::PreferenceCycle {
                            process: self.id,
                            source: src,
                        });
                    }
                    po.add(a, b);
                    related[a] = true;
                    related[b] = true;
                }
            }
            let structure = if m == 1 {
                Successors::Seq(self.edges[edge_idxs[0]].to)
            } else if related.iter().any(|&r| r) {
                // Alternative group: every out-edge must participate and ◁
                // must be a total order over them.
                if !related.iter().all(|&r| r) {
                    return Err(ModelError::PreferenceNotTotal {
                        process: self.id,
                        source: src,
                    });
                }
                let Some(order) = po.topological_order() else {
                    return Err(ModelError::PreferenceCycle {
                        process: self.id,
                        source: src,
                    });
                };
                // Totality: the topological order must be a chain.
                let r = po.reachability();
                for w in order.windows(2) {
                    if !r.lt(w[0], w[1]) {
                        return Err(ModelError::PreferenceNotTotal {
                            process: self.id,
                            source: src,
                        });
                    }
                }
                Successors::Alternatives(
                    order
                        .into_iter()
                        .map(|k| self.edges[edge_idxs[k]].to)
                        .collect(),
                )
            } else {
                Successors::Parallel(edge_idxs.iter().map(|&k| self.edges[k].to).collect())
            };
            self.successors[src.index()] = structure;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> (Catalog, ServiceId, ServiceId, ServiceId, ServiceId) {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let p = cat.pivot("p");
        let r = cat.retriable("r");
        let (c2, _) = cat.compensatable("c2");
        (cat, c, p, r, c2)
    }

    #[test]
    fn linear_chain_builds() {
        let (cat, c, p, r, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(1), "lin");
        let a1 = b.activity("a1", c);
        let a2 = b.activity("a2", p);
        let a3 = b.activity("a3", r);
        b.chain(&[a1, a2, a3]);
        let proc = b.build(&cat).unwrap();
        assert_eq!(proc.root(), Some(a1));
        assert!(proc.is_tree());
        assert_eq!(proc.successors(a1), &Successors::Seq(a2));
        assert_eq!(proc.successors(a3), &Successors::None);
        assert_eq!(proc.predecessors(a2), &[a1]);
        assert_eq!(proc.find("a2"), Some(a2));
        assert_eq!(proc.find("zz"), None);
    }

    /// Builds the paper's process P₁ (Figure 2): a1₁ᶜ ≪ a1₂ᵖ ≪ a1₃ᶜ ≪ a1₄ᵖ
    /// with alternative a1₂ ≪ a1₅ʳ ≪ a1₆ʳ where (a1₂≪a1₃) ◁ (a1₂≪a1₅).
    #[test]
    fn figure2_p1_structure() {
        let (cat, c, p, r, c2) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(1), "P1");
        let a1 = b.activity("a1_1", c);
        let a2 = b.activity("a1_2", p);
        let a3 = b.activity("a1_3", c2);
        let a4 = b.activity("a1_4", p);
        let a5 = b.activity("a1_5", r);
        let a6 = b.activity("a1_6", r);
        b.chain(&[a1, a2, a3, a4]);
        b.precede(a2, a5);
        b.precede(a5, a6);
        b.prefer(a2, a3, a5);
        let proc = b.build(&cat).unwrap();
        assert_eq!(proc.successors(a2), &Successors::Alternatives(vec![a3, a5]));
        assert_eq!(proc.successors(a3), &Successors::Seq(a4));
        assert_eq!(proc.successors(a5), &Successors::Seq(a6));
        assert!(proc.is_tree());
    }

    #[test]
    fn three_way_alternatives_ordered_by_preference() {
        let (cat, c, p, r, c2) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(2), "tri");
        let a0 = b.activity("a0", p);
        let x = b.activity("x", c);
        let y = b.activity("y", c2);
        let z = b.activity("z", r);
        b.alternatives(a0, &[x, y, z]);
        let proc = b.build(&cat).unwrap();
        assert_eq!(
            proc.successors(a0),
            &Successors::Alternatives(vec![x, y, z])
        );
    }

    #[test]
    fn parallel_successors_without_preference() {
        let (cat, c, _, r, c2) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(3), "par");
        let a0 = b.activity("a0", c);
        let x = b.activity("x", c2);
        let y = b.activity("y", r);
        b.precede(a0, x);
        b.precede(a0, y);
        let proc = b.build(&cat).unwrap();
        assert_eq!(proc.successors(a0), &Successors::Parallel(vec![x, y]));
    }

    #[test]
    fn partial_preference_over_three_edges_rejected() {
        // ◁ must totally order the alternatives of a node (Definition 5).
        let (cat, c, p, r, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(4), "bad");
        let a0 = b.activity("a0", p);
        let x = b.activity("x", c);
        let y = b.activity("y", r);
        let z = b.activity("z", r);
        b.precede(a0, x);
        b.precede(a0, y);
        b.precede(a0, z);
        b.prefer(a0, x, y); // z unrelated -> not total
        let err = b.build(&cat).unwrap_err();
        assert!(matches!(err, ModelError::PreferenceNotTotal { .. }));
    }

    #[test]
    fn cyclic_preference_rejected() {
        let (cat, c, p, _, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(4), "badpref");
        let a0 = b.activity("a0", p);
        let x = b.activity("x", c);
        let y = b.activity("y", c);
        b.prefer(a0, x, y);
        b.prefer(a0, y, x);
        let err = b.build(&cat).unwrap_err();
        assert!(matches!(
            err,
            ModelError::PreferenceCycle { .. } | ModelError::PreferenceNotTotal { .. }
        ));
    }

    #[test]
    fn cyclic_precedence_rejected() {
        let (cat, c, p, _, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(5), "cyc");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        b.precede(a0, a1);
        b.precede(a1, a0);
        assert_eq!(
            b.build(&cat).unwrap_err(),
            ModelError::PrecedenceCycle(ProcessId(5))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let (cat, c, _, _, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(5), "self");
        let a0 = b.activity("a0", c);
        b.precede(a0, a0);
        assert_eq!(
            b.build(&cat).unwrap_err(),
            ModelError::PrecedenceCycle(ProcessId(5))
        );
    }

    #[test]
    fn empty_process_rejected() {
        let (cat, ..) = catalog();
        let b = ProcessBuilder::new(ProcessId(6), "empty");
        assert_eq!(
            b.build(&cat).unwrap_err(),
            ModelError::EmptyProcess(ProcessId(6))
        );
    }

    #[test]
    fn compensating_service_as_activity_rejected() {
        let mut cat = Catalog::new();
        let (_, comp) = cat.compensatable("x");
        let mut b = ProcessBuilder::new(ProcessId(7), "bad");
        b.activity("a0", comp);
        let err = b.build(&cat).unwrap_err();
        assert!(matches!(
            err,
            ModelError::CompensatingServiceInProcess { .. }
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let (cat, c, p, _, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(8), "dup");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        // `precede` twice (builder dedup only applies to prefer-created edges).
        b.precede(a0, a1);
        b.precede(a0, a1);
        let err = b.build(&cat).unwrap_err();
        assert!(matches!(err, ModelError::DuplicateEdge { .. }));
    }

    #[test]
    fn preference_source_mismatch_rejected() {
        let (cat, c, p, r, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(9), "mismatch");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        let a2 = b.activity("a2", r);
        b.precede(a0, a1);
        b.precede(a1, a2);
        // Manually fabricate an invalid preference pair across sources.
        b.preference.push((0, 1));
        let err = b.build(&cat).unwrap_err();
        assert!(matches!(err, ModelError::PreferenceSourceMismatch { .. }));
    }

    #[test]
    fn multi_root_process_has_no_root() {
        let (cat, c, _, r, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(10), "forest");
        let _x = b.activity("x", c);
        let _y = b.activity("y", r);
        let proc = b.build(&cat).unwrap();
        assert_eq!(proc.root(), None);
        assert!(!proc.is_tree());
    }

    #[test]
    fn precedence_order_reflects_edges() {
        let (cat, c, p, r, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(11), "po");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        let a2 = b.activity("a2", r);
        b.chain(&[a0, a1, a2]);
        let proc = b.build(&cat).unwrap();
        let r2 = proc.precedence_order().reachability();
        assert!(r2.lt(0, 2));
        assert!(!r2.lt(2, 0));
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let (cat, c, _, _, _) = catalog();
        let mut b = ProcessBuilder::new(ProcessId(12), "oob");
        let a0 = b.activity("a0", c);
        b.precede(a0, ActivityId(9));
        assert!(matches!(
            b.build(&cat).unwrap_err(),
            ModelError::UnknownActivity(_)
        ));
    }
}
