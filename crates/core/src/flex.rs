//! Well-formed flex structure and guaranteed termination (§3.1, \[ZNBB94\]).
//!
//! A process has *guaranteed termination* (the flex transaction model's
//! "semi-atomicity") when at least one of its alternative executions always
//! completes while every abandoned path leaves no effects. \[ZNBB94\] shows
//! that *well-formed flex structures* guarantee this: a sequence of
//! compensatable activities, followed by one pivot, followed either by
//! retriable activities only, or recursively by a well-formed flex structure
//! that has an all-retriable alternative.
//!
//! This module provides two checks:
//!
//! * [`FlexAnalysis::guaranteed_termination`] — a syntactic criterion on the
//!   process tree: every activity that can fail must do so either while full
//!   backward recovery is still possible (no non-compensatable activity has
//!   committed, `B-REC`), or while an untried alternative is reachable by
//!   compensating only compensatable activities. This slightly generalizes
//!   the well-formed shape (it also admits alternatives anchored at
//!   compensatable activities). The criterion is **sound but conservative**:
//!   it analyzes every declared branch, including fallbacks that are
//!   operationally dead because their preferred sibling consists only of
//!   retriable activities and can never fail. Soundness is cross-validated
//!   against an exhaustive operational exploration in the test suite.
//! * [`FlexAnalysis::strict_well_formed`] — the literal \[ZNBB94\] shape used
//!   by the paper: alternatives occur only at pivots, the lowest-priority
//!   alternative consists of retriable activities only.
//!
//! It also enumerates the *valid executions* of a process (Figure 3).

use crate::activity::{Catalog, Termination};
use crate::ids::ActivityId;
use crate::process::{Process, Successors};
use crate::state::{ExecStep, ProcessState};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a process fails the guaranteed-termination analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlexError {
    /// The analysis requires a unique start activity and at most one
    /// predecessor per activity (tree shape).
    NotATree,
    /// AND-split (parallel) successors are not supported by the
    /// guaranteed-termination analysis; intra-process parallelism is handled
    /// at the schedule level via weak orders (§3.6).
    ParallelUnsupported(ActivityId),
    /// The activity can fail while the process is forward-recoverable and no
    /// alternative is reachable: termination would not be guaranteed.
    UnhandledFailure(ActivityId),
}

impl fmt::Display for FlexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlexError::NotATree => {
                write!(f, "flex analysis requires a tree-structured process")
            }
            FlexError::ParallelUnsupported(a) => {
                write!(f, "parallel successors of {a} are not supported by flex analysis")
            }
            FlexError::UnhandledFailure(a) => write!(
                f,
                "activity {a} can fail in F-REC with no reachable alternative: termination not guaranteed"
            ),
        }
    }
}

impl std::error::Error for FlexError {}

/// Result of analyzing a process's flex structure.
#[derive(Debug, Clone)]
pub struct FlexAnalysis {
    /// `Ok(())` when every possible failure is handled (guaranteed
    /// termination); the offending activity otherwise.
    pub guaranteed_termination: Result<(), FlexError>,
    /// Whether the process has the literal \[ZNBB94\] well-formed flex shape.
    pub strict_well_formed: bool,
    /// The first non-compensatable activity on the most-preferred execution
    /// path: the state-determining activity `s_{i_0}` of §3.1 (if the
    /// process has any non-compensatable activity).
    pub state_determining: Option<ActivityId>,
}

impl FlexAnalysis {
    /// Analyzes a process against a catalog.
    pub fn analyze(process: &Process, catalog: &Catalog) -> Self {
        let guaranteed_termination = check_guaranteed_termination(process, catalog);
        let strict_well_formed =
            guaranteed_termination.is_ok() && check_strict_wff(process, catalog);
        let state_determining = find_state_determining(process, catalog);
        Self {
            guaranteed_termination,
            strict_well_formed,
            state_determining,
        }
    }

    /// Whether the process is a *process with guaranteed termination* and may
    /// be admitted by a transactional process scheduler.
    pub fn has_guaranteed_termination(&self) -> bool {
        self.guaranteed_termination.is_ok()
    }
}

fn term(process: &Process, catalog: &Catalog, a: ActivityId) -> Termination {
    catalog.termination(process.service(a))
}

/// Syntactic guaranteed-termination check (see module docs).
fn check_guaranteed_termination(process: &Process, catalog: &Catalog) -> Result<(), FlexError> {
    let Some(root) = process.root() else {
        return Err(FlexError::NotATree);
    };
    if !process.is_tree() {
        return Err(FlexError::NotATree);
    }
    // DFS with (node, in_frec, handled) where
    //   in_frec  = a non-compensatable activity committed on the path here,
    //   handled  = an untried alternative is reachable by compensating only
    //              compensatable activities.
    let mut stack = vec![(root, false, false)];
    while let Some((x, in_frec, handled)) = stack.pop() {
        let t = term(process, catalog, x);
        if t.can_fail() && in_frec && !handled {
            return Err(FlexError::UnhandledFailure(x));
        }
        // After x commits:
        let in_frec2 = in_frec || !t.is_compensatable();
        // Committing a non-compensatable activity bars compensation back to
        // any earlier choice point.
        let handled2 = if t.is_compensatable() { handled } else { false };
        match process.successors(x) {
            Successors::None => {}
            Successors::Seq(y) => stack.push((*y, in_frec2, handled2)),
            Successors::Alternatives(branches) => {
                let last = branches.len() - 1;
                for (i, &b) in branches.iter().enumerate() {
                    // While a lower-priority branch remains untried, failures
                    // on this branch are handled (fall back through
                    // compensation of this branch's compensatables).
                    let h = if i < last { true } else { handled2 };
                    stack.push((b, in_frec2, h));
                }
            }
            Successors::Parallel(_) => return Err(FlexError::ParallelUnsupported(x)),
        }
    }
    Ok(())
}

/// Literal \[ZNBB94\] well-formed flex structure:
/// `WFF  := comp* (ε | pivot TAIL | retriable*)`
/// `TAIL := ε | retriable* | (WFF ◁ … ◁ retriable*)` — alternatives occur
/// only at pivots and the lowest-priority alternative is all-retriable.
fn check_strict_wff(process: &Process, catalog: &Catalog) -> bool {
    let Some(root) = process.root() else {
        return false;
    };
    wff_segment(process, catalog, root)
}

/// Parses `comp* (ε | pivot TAIL | retriable*)` starting at `x`.
fn wff_segment(process: &Process, catalog: &Catalog, mut x: ActivityId) -> bool {
    // comp* prefix.
    loop {
        match term(process, catalog, x) {
            Termination::Compensatable => match process.successors(x) {
                Successors::None => return true, // all-compensatable process
                Successors::Seq(y) => x = *y,
                _ => return false, // alternatives/parallel at a compensatable
            },
            Termination::Pivot => return wff_tail(process, catalog, x),
            Termination::Retriable => return retriable_tail(process, catalog, x),
        }
    }
}

/// Parses the continuation after a pivot at `x`.
fn wff_tail(process: &Process, catalog: &Catalog, pivot: ActivityId) -> bool {
    match process.successors(pivot) {
        Successors::None => true,
        Successors::Seq(y) => match term(process, catalog, *y) {
            Termination::Retriable => retriable_tail(process, catalog, *y),
            // A recursive WFF directly after a pivot without an all-retriable
            // alternative is not well formed.
            _ => false,
        },
        Successors::Alternatives(branches) => {
            let (last, rest) = branches.split_last().expect("alternatives are non-empty");
            rest.iter().all(|&b| wff_segment(process, catalog, b))
                && retriable_tail(process, catalog, *last)
        }
        Successors::Parallel(_) => false,
    }
}

/// Parses `retriable+` (a chain of retriable activities, no branching).
fn retriable_tail(process: &Process, catalog: &Catalog, mut x: ActivityId) -> bool {
    loop {
        if term(process, catalog, x) != Termination::Retriable {
            return false;
        }
        match process.successors(x) {
            Successors::None => return true,
            Successors::Seq(y) => x = *y,
            _ => return false,
        }
    }
}

/// The first non-compensatable activity along the most-preferred path.
fn find_state_determining(process: &Process, catalog: &Catalog) -> Option<ActivityId> {
    let mut x = process.root()?;
    loop {
        if !term(process, catalog, x).is_compensatable() {
            return Some(x);
        }
        match process.successors(x) {
            Successors::None => return None,
            Successors::Seq(y) => x = *y,
            Successors::Alternatives(branches) => x = branches[0],
            Successors::Parallel(_) => return None,
        }
    }
}

/// One valid execution of a process (one row of Figure 3): the sequence of
/// effects it leaves, plus whether the process committed or aborted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidExecution {
    /// Executed and compensating steps in order.
    pub steps: Vec<ExecStep>,
    /// `true` when the process committed; `false` for a backward abort.
    pub committed: bool,
}

impl fmt::Display for ValidExecution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            match s {
                ExecStep::Executed(a) => write!(f, "a{}", a.0)?,
                ExecStep::Compensated(a) => write!(f, "a{}⁻¹", a.0)?,
            }
        }
        write!(f, "⟩ {}", if self.committed { "C" } else { "A" })
    }
}

/// Enumerates all valid executions of a process (Figure 3) by exploring
/// every combination of activity outcomes.
///
/// Executions that leave no effects at all (the very first activity fails)
/// are omitted, matching the paper's count of four valid executions for P₁.
/// `limit` bounds the exploration for safety.
pub fn valid_executions(
    process: &Process,
    catalog: &Catalog,
    limit: usize,
) -> Result<Vec<ValidExecution>, FlexError> {
    let initial = ProcessState::new(process, catalog)?;
    let mut out = Vec::new();
    let mut stack = vec![initial];
    while let Some(state) = stack.pop() {
        if out.len() >= limit {
            break;
        }
        match state.next_activity() {
            None => {
                // Path end: the process commits.
                out.push(ValidExecution {
                    steps: state.steps().to_vec(),
                    committed: true,
                });
            }
            Some(a) => {
                // Branch 1: the activity commits.
                let mut ok = state.clone();
                ok.apply_commit(a).expect("legal commit");
                stack.push(ok);
                // Branch 2: the activity fails (if it can).
                if term(process, catalog, a).can_fail() {
                    let mut failed = state.clone();
                    let outcome = failed.apply_failure(a).expect("legal failure");
                    match outcome {
                        crate::state::FailureOutcome::Alternative { .. } => {
                            failed.run_pending_compensations();
                            stack.push(failed);
                        }
                        crate::state::FailureOutcome::ProcessAbort { .. } => {
                            failed.run_pending_compensations();
                            if !failed.steps().is_empty() {
                                out.push(ValidExecution {
                                    steps: failed.steps().to_vec(),
                                    committed: false,
                                });
                            }
                        }
                        crate::state::FailureOutcome::Stuck => {
                            return Err(FlexError::UnhandledFailure(a));
                        }
                    }
                }
            }
        }
    }
    // Deterministic order: shortest first, then lexicographic.
    out.sort_by(|a, b| {
        (a.steps.len(), &a.steps, a.committed).cmp(&(b.steps.len(), &b.steps, b.committed))
    });
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::ids::ProcessId;
    use crate::process::ProcessBuilder;

    #[test]
    fn p1_is_well_formed_with_guaranteed_termination() {
        let fx = fixtures::paper_world();
        let p1 = &fx.p1;
        let analysis = FlexAnalysis::analyze(p1, &fx.spec.catalog);
        assert!(analysis.has_guaranteed_termination());
        assert!(analysis.strict_well_formed);
        // Example 2: the pivot a1_2 is the state-determining activity s_1_0.
        assert_eq!(analysis.state_determining, Some(ActivityId(1)));
    }

    #[test]
    fn p1_has_four_valid_executions() {
        // Example 1 / Figure 3: four possible valid executions of P₁.
        let fx = fixtures::paper_world();
        let execs = valid_executions(&fx.p1, &fx.spec.catalog, 100).unwrap();
        assert_eq!(execs.len(), 4, "{execs:#?}");
        let rendered: Vec<String> = execs.iter().map(|e| e.to_string()).collect();
        // ⟨a0 a0⁻¹⟩ backward abort (a1_2 failed; ids are 0-based here).
        assert!(rendered.iter().any(|s| s.contains("a0⁻¹")));
        // The full success path.
        assert!(execs.iter().any(|e| e.committed
            && e.steps.len() == 4
            && !e
                .steps
                .iter()
                .any(|s| matches!(s, ExecStep::Compensated(_)))));
        // The a1_4-failure path with compensation of a1_3.
        assert!(execs
            .iter()
            .any(|e| e.committed && e.steps.contains(&ExecStep::Compensated(ActivityId(2)))));
    }

    #[test]
    fn pivot_followed_by_pivot_without_alternative_is_not_guaranteed() {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let p = cat.pivot("p");
        let mut b = ProcessBuilder::new(ProcessId(1), "bad");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        let a2 = b.activity("a2", p);
        b.chain(&[a0, a1, a2]);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert_eq!(
            analysis.guaranteed_termination,
            Err(FlexError::UnhandledFailure(a2))
        );
        assert!(!analysis.strict_well_formed);
    }

    #[test]
    fn pivot_pivot_with_retriable_alternative_is_guaranteed() {
        // The recursive case: p₂ may fail because a retriable alternative
        // exists at p₁.
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let p = cat.pivot("p");
        let p2 = cat.pivot("p2");
        let r = cat.retriable("r");
        let mut b = ProcessBuilder::new(ProcessId(1), "rec");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", p);
        let a2 = b.activity("a2", p2);
        let a3 = b.activity("a3", r);
        b.precede(a0, a1);
        b.precede(a1, a2);
        b.precede(a1, a3);
        b.prefer(a1, a2, a3);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert!(analysis.has_guaranteed_termination());
        assert!(analysis.strict_well_formed);
        assert_eq!(analysis.state_determining, Some(a1));
    }

    #[test]
    fn compensatable_after_retriable_tail_is_not_strict_wff() {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let r = cat.retriable("r");
        let mut b = ProcessBuilder::new(ProcessId(1), "mix");
        let a0 = b.activity("a0", r);
        let a1 = b.activity("a1", c);
        b.precede(a0, a1);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert!(!analysis.strict_well_formed);
        // And not guaranteed either: a1 can fail after the retriable a0
        // committed, with no alternative.
        assert_eq!(
            analysis.guaranteed_termination,
            Err(FlexError::UnhandledFailure(a1))
        );
    }

    #[test]
    fn all_compensatable_process_is_guaranteed() {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let mut b = ProcessBuilder::new(ProcessId(1), "comps");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", c);
        b.precede(a0, a1);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert!(analysis.has_guaranteed_termination());
        assert!(analysis.strict_well_formed);
        assert_eq!(analysis.state_determining, None);
    }

    #[test]
    fn all_retriable_process_is_guaranteed() {
        let mut cat = Catalog::new();
        let r = cat.retriable("r");
        let mut b = ProcessBuilder::new(ProcessId(1), "rets");
        let a0 = b.activity("a0", r);
        let a1 = b.activity("a1", r);
        b.precede(a0, a1);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert!(analysis.has_guaranteed_termination());
        assert!(analysis.strict_well_formed);
        assert_eq!(analysis.state_determining, Some(a0));
    }

    #[test]
    fn non_tree_process_rejected() {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let r = cat.retriable("r");
        let mut b = ProcessBuilder::new(ProcessId(1), "dag");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", c);
        let a2 = b.activity("a2", r);
        b.precede(a0, a2);
        b.precede(a1, a2);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert_eq!(analysis.guaranteed_termination, Err(FlexError::NotATree));
    }

    #[test]
    fn parallel_split_rejected_by_flex_analysis() {
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let r = cat.retriable("r");
        let mut b = ProcessBuilder::new(ProcessId(1), "and");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", r);
        let a2 = b.activity("a2", r);
        b.precede(a0, a1);
        b.precede(a0, a2);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert_eq!(
            analysis.guaranteed_termination,
            Err(FlexError::ParallelUnsupported(a0))
        );
    }

    #[test]
    fn alternatives_at_compensatable_guaranteed_but_not_strict() {
        // Our generalized criterion admits a choice point at a compensatable
        // activity; [ZNBB94]'s literal shape does not.
        let mut cat = Catalog::new();
        let (c, _) = cat.compensatable("c");
        let (c2, _) = cat.compensatable("c2");
        let (c3, _) = cat.compensatable("c3");
        let mut b = ProcessBuilder::new(ProcessId(1), "calt");
        let a0 = b.activity("a0", c);
        let a1 = b.activity("a1", c2);
        let a2 = b.activity("a2", c3);
        b.prefer(a0, a1, a2);
        let proc = b.build(&cat).unwrap();
        let analysis = FlexAnalysis::analyze(&proc, &cat);
        assert!(analysis.has_guaranteed_termination());
        assert!(!analysis.strict_well_formed);
    }

    #[test]
    fn valid_execution_display() {
        let fx = fixtures::paper_world();
        let execs = valid_executions(&fx.p1, &fx.spec.catalog, 100).unwrap();
        let s = execs[0].to_string();
        assert!(s.starts_with('⟨') && (s.ends_with('C') || s.ends_with('A')));
    }
}
