//! Conflict-graph serializability of process schedules (§3.2).
//!
//! A process schedule is serializable when it is conflict-equivalent to a
//! serial execution of its processes, i.e. when the process-level conflict
//! graph — one edge `P_i → P_j` per conflicting activity pair ordered
//! `a_{i_k} ≪_S a_{j_l}` — is acyclic \[BHG87\].

use crate::error::ScheduleError;
use crate::ids::ProcessId;
use crate::order::Reachability;
use crate::schedule::{Op, Schedule};
use crate::spec::Spec;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Process-level conflict graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessGraph {
    nodes: BTreeSet<ProcessId>,
    edges: BTreeSet<(ProcessId, ProcessId)>,
}

impl ProcessGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node.
    pub fn add_node(&mut self, p: ProcessId) {
        self.nodes.insert(p);
    }

    /// Adds the dependency `from → to`.
    pub fn add_edge(&mut self, from: ProcessId, to: ProcessId) {
        self.nodes.insert(from);
        self.nodes.insert(to);
        if from != to {
            self.edges.insert((from, to));
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.nodes.iter().copied()
    }

    /// All edges.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.edges.iter().copied()
    }

    /// Whether the edge exists.
    pub fn has_edge(&self, from: ProcessId, to: ProcessId) -> bool {
        self.edges.contains(&(from, to))
    }

    /// Topological order over the nodes, or `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<ProcessId>> {
        let mut indeg: BTreeMap<ProcessId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        let mut succ: BTreeMap<ProcessId, Vec<ProcessId>> = BTreeMap::new();
        for &(a, b) in &self.edges {
            *indeg.get_mut(&b).expect("edge endpoint registered") += 1;
            succ.entry(a).or_default().push(b);
        }
        let mut queue: VecDeque<ProcessId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut out = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for &m in succ.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                let d = indeg.get_mut(&m).expect("registered");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(m);
                }
            }
        }
        (out.len() == self.nodes.len()).then_some(out)
    }

    /// Whether the graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }
}

/// Builds the conflict graph of a *linear* operation history: conflicting
/// cross-process operations are ordered by position.
pub fn process_graph_linear(spec: &Spec, ops: &[Op]) -> ProcessGraph {
    let oracle = spec.oracle();
    let mut g = ProcessGraph::new();
    for op in ops {
        g.add_node(op.gid.process);
    }
    for (i, x) in ops.iter().enumerate() {
        for y in &ops[i + 1..] {
            if x.gid.process != y.gid.process && oracle.conflict(x.service, y.service) {
                g.add_edge(x.gid.process, y.gid.process);
            }
        }
    }
    g
}

/// Builds the conflict graph of operations under an explicit partial order
/// (used for completed schedules), restricted to `live` operations.
pub fn process_graph_ordered(
    spec: &Spec,
    ops: &[Op],
    reach: &Reachability,
    live: &[bool],
) -> ProcessGraph {
    let oracle = spec.oracle();
    let mut g = ProcessGraph::new();
    for (i, op) in ops.iter().enumerate() {
        if live[i] {
            g.add_node(op.gid.process);
        }
    }
    for (i, x) in ops.iter().enumerate() {
        if !live[i] {
            continue;
        }
        for (j, y) in ops.iter().enumerate().skip(i + 1) {
            if !live[j] || x.gid.process == y.gid.process {
                continue;
            }
            if !oracle.conflict(x.service, y.service) {
                continue;
            }
            if reach.lt(i, j) {
                g.add_edge(x.gid.process, y.gid.process);
            } else if reach.lt(j, i) {
                g.add_edge(y.gid.process, x.gid.process);
            } else {
                debug_assert!(
                    false,
                    "conflicting operations {x} and {y} must be ordered (Definition 8.3)"
                );
            }
        }
    }
    g
}

/// Whether a schedule is serializable (§3.2): its process-level conflict
/// graph is acyclic.
pub fn is_serializable(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    let ops = schedule.ops(spec)?;
    Ok(process_graph_linear(spec, &ops).is_acyclic())
}

/// Whether the *committed projection* of a schedule is serializable — the
/// notion used by Theorem 1's proof ("a conflict cycle has to exist ... in
/// the committed projection of S"). The projection keeps the effective
/// operations of committed processes: compensating activities and the
/// activities they cancelled are effect-free pairs and drop out.
pub fn is_serializable_committed(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    let replay = schedule.replay(spec)?;
    let compensated: std::collections::BTreeSet<_> = replay
        .ops
        .iter()
        .filter(|o| o.kind == crate::schedule::OpKind::Compensation)
        .map(|o| o.gid)
        .collect();
    let ops: Vec<Op> = replay
        .ops
        .iter()
        .filter(|o| {
            replay.commit_event.contains_key(&o.gid.process)
                && o.kind == crate::schedule::OpKind::Forward
                && !compensated.contains(&o.gid)
        })
        .copied()
        .collect();
    Ok(process_graph_linear(spec, &ops).is_acyclic())
}

/// A serialization order of the schedule's processes, or `None` when not
/// serializable.
pub fn serialization_order(
    spec: &Spec,
    schedule: &Schedule,
) -> Result<Option<Vec<ProcessId>>, ScheduleError> {
    let ops = schedule.ops(spec)?;
    Ok(process_graph_linear(spec, &ops).topological_order())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    /// Figure 4(a) / Example 4: serializable interleaving of P₁ and P₂.
    fn figure4a(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 3));
        s
    }

    /// Figure 4(b) / Example 3: non-serializable interleaving — a2_4
    /// executes before a1_2, so the conflicts point both ways.
    fn figure4b(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3));
        s
    }

    #[test]
    fn example_4_is_serializable() {
        let fx = fixtures::paper_world();
        assert!(is_serializable(&fx.spec, &figure4a(&fx)).unwrap());
        let order = serialization_order(&fx.spec, &figure4a(&fx))
            .unwrap()
            .unwrap();
        // Both conflicts point P₁ → P₂: P₁ serializes first.
        assert_eq!(order, vec![ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn example_3_is_not_serializable() {
        // Example 3: S'_t2 has cyclic dependencies between P₁ and P₂
        // (a1_1 ≪ a2_1 gives P₁→P₂, a2_4 ≪ a1_2 gives P₂→P₁).
        let fx = fixtures::paper_world();
        assert!(!is_serializable(&fx.spec, &figure4b(&fx)).unwrap());
        assert!(serialization_order(&fx.spec, &figure4b(&fx))
            .unwrap()
            .is_none());
    }

    #[test]
    fn conflict_graph_edges_match_example_3() {
        let fx = fixtures::paper_world();
        let ops = figure4b(&fx).ops(&fx.spec).unwrap();
        let g = process_graph_linear(&fx.spec, &ops);
        assert!(g.has_edge(ProcessId(1), ProcessId(2)));
        assert!(g.has_edge(ProcessId(2), ProcessId(1)));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn single_process_schedule_trivially_serializable() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        assert!(is_serializable(&fx.spec, &s).unwrap());
    }

    #[test]
    fn empty_schedule_serializable() {
        let fx = fixtures::paper_world();
        assert!(is_serializable(&fx.spec, &Schedule::new()).unwrap());
    }

    #[test]
    fn graph_self_edges_ignored() {
        let mut g = ProcessGraph::new();
        g.add_edge(ProcessId(1), ProcessId(1));
        assert!(g.is_acyclic());
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn three_node_cycle_detected() {
        let mut g = ProcessGraph::new();
        g.add_edge(ProcessId(1), ProcessId(2));
        g.add_edge(ProcessId(2), ProcessId(3));
        g.add_edge(ProcessId(3), ProcessId(1));
        assert!(!g.is_acyclic());
    }
}
