//! The global service set Â and the termination properties of activities
//! (§3.1, Definitions 1–4).
//!
//! Activities are invocations of *services* offered by transactional
//! subsystems. Each service is atomic (it either commits or aborts) and
//! carries one of three termination guarantees:
//!
//! * **compensatable** — a compensating service exists whose execution right
//!   after the activity is effect-free (Definitions 1 and 2),
//! * **retriable** — guaranteed to commit after finitely many invocations
//!   (Definition 3),
//! * **pivot** — neither compensatable nor retriable; once committed it can
//!   never be undone, and it may fail for good (Definition 4).
//!
//! Compensating services are themselves members of Â. Following §3.1 they
//! are *retriable but not compensatable* — recovery must always be able to
//! finish.

use crate::error::ModelError;
use crate::ids::ServiceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Termination guarantee of a service (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Termination {
    /// A compensating service exists (Definition 2). Written `a^c`.
    Compensatable,
    /// Neither compensatable nor retriable. Written `a^p`.
    Pivot,
    /// Guaranteed to commit after finitely many invocations (Definition 3).
    /// Written `a^r`.
    Retriable,
}

impl Termination {
    /// Whether an activity with this guarantee can be undone after commit.
    #[inline]
    pub fn is_compensatable(self) -> bool {
        matches!(self, Termination::Compensatable)
    }

    /// Whether an activity with this guarantee can fail (Definition 4).
    /// Retriable activities never fail.
    #[inline]
    pub fn can_fail(self) -> bool {
        !matches!(self, Termination::Retriable)
    }

    /// The paper's superscript notation for this guarantee.
    pub fn superscript(self) -> &'static str {
        match self {
            Termination::Compensatable => "c",
            Termination::Pivot => "p",
            Termination::Retriable => "r",
        }
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.superscript())
    }
}

/// Definition of one service in Â.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceDef {
    /// Human-readable name (e.g. `"pdm_entry"`).
    pub name: String,
    /// Termination guarantee.
    pub termination: Termination,
    /// For compensatable services: the compensating service.
    pub compensation: Option<ServiceId>,
    /// For compensating services: the base service they undo.
    pub compensates: Option<ServiceId>,
    /// Whether invoking the service is effect-free (Definition 1), e.g. a
    /// pure read whose removal never changes other activities' return values.
    /// Used by the effect-free reduction rule (Definition 9, rule 3).
    pub effect_free: bool,
}

impl ServiceDef {
    /// Whether this service is a compensating service `a⁻¹`.
    #[inline]
    pub fn is_compensating(&self) -> bool {
        self.compensates.is_some()
    }
}

/// The catalog of all services Â offered by the subsystems.
///
/// Registering a compensatable service automatically registers its
/// compensating service and links the two. The compensating service is
/// retriable (recovery must terminate) and not compensatable itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    services: Vec<ServiceDef>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered services, compensating services included.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the catalog has no services.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Registers a compensatable service together with its compensating
    /// service. Returns `(service, compensating_service)`.
    pub fn compensatable(&mut self, name: impl Into<String>) -> (ServiceId, ServiceId) {
        let name = name.into();
        let base = ServiceId(self.services.len() as u32);
        let comp = ServiceId(self.services.len() as u32 + 1);
        self.services.push(ServiceDef {
            name: name.clone(),
            termination: Termination::Compensatable,
            compensation: Some(comp),
            compensates: None,
            effect_free: false,
        });
        self.services.push(ServiceDef {
            name: format!("{name}⁻¹"),
            // §3.1: a compensating activity is itself not compensatable but
            // retriable, and therefore guaranteed to commit.
            termination: Termination::Retriable,
            compensation: None,
            compensates: Some(base),
            effect_free: false,
        });
        (base, comp)
    }

    /// Registers a pivot service.
    pub fn pivot(&mut self, name: impl Into<String>) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        self.services.push(ServiceDef {
            name: name.into(),
            termination: Termination::Pivot,
            compensation: None,
            compensates: None,
            effect_free: false,
        });
        id
    }

    /// Registers a retriable service.
    pub fn retriable(&mut self, name: impl Into<String>) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        self.services.push(ServiceDef {
            name: name.into(),
            termination: Termination::Retriable,
            compensation: None,
            compensates: None,
            effect_free: false,
        });
        id
    }

    /// Marks a service as effect-free (Definition 1). Typically used for
    /// read-only services.
    pub fn mark_effect_free(&mut self, id: ServiceId) -> Result<(), ModelError> {
        let def = self
            .services
            .get_mut(id.index())
            .ok_or(ModelError::UnknownService(id))?;
        def.effect_free = true;
        Ok(())
    }

    /// Looks up a service definition.
    pub fn get(&self, id: ServiceId) -> Result<&ServiceDef, ModelError> {
        self.services
            .get(id.index())
            .ok_or(ModelError::UnknownService(id))
    }

    /// Looks up a service definition, panicking on an unknown id.
    ///
    /// Intended for hot paths after ids have been validated once.
    #[inline]
    pub fn def(&self, id: ServiceId) -> &ServiceDef {
        &self.services[id.index()]
    }

    /// The termination guarantee of a service.
    #[inline]
    pub fn termination(&self, id: ServiceId) -> Termination {
        self.def(id).termination
    }

    /// The compensating service of a compensatable service.
    #[inline]
    pub fn compensation_of(&self, id: ServiceId) -> Option<ServiceId> {
        self.def(id).compensation
    }

    /// For a compensating service, the base service it undoes.
    #[inline]
    pub fn base_of_compensation(&self, id: ServiceId) -> Option<ServiceId> {
        self.def(id).compensates
    }

    /// Maps any service to its *base* service: compensating services map to
    /// the service they undo, all others map to themselves.
    ///
    /// This implements the *perfect commutativity* assumption of §3.2: a
    /// compensating activity has exactly the conflicts of its base activity.
    #[inline]
    pub fn base(&self, id: ServiceId) -> ServiceId {
        self.def(id).compensates.unwrap_or(id)
    }

    /// Whether a service is effect-free.
    #[inline]
    pub fn is_effect_free(&self, id: ServiceId) -> bool {
        self.def(id).effect_free
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, &ServiceDef)> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, d)| (ServiceId(i as u32), d))
    }

    /// Validates internal consistency; used by [`Spec`](crate::spec::Spec)
    /// construction and by tests.
    pub fn validate(&self) -> Result<(), ModelError> {
        for (id, def) in self.iter() {
            match def.termination {
                Termination::Compensatable => {
                    let comp = def.compensation.ok_or(ModelError::UnknownService(id))?;
                    let cdef = self.get(comp)?;
                    if cdef.compensates != Some(id) {
                        return Err(ModelError::UnknownService(comp));
                    }
                    // Compensating services must be retriable and must not be
                    // compensatable themselves (§3.1).
                    if cdef.termination != Termination::Retriable || cdef.compensation.is_some() {
                        return Err(ModelError::UnknownService(comp));
                    }
                }
                Termination::Pivot | Termination::Retriable => {
                    if def.compensation.is_some() {
                        return Err(ModelError::UnknownService(id));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensatable_registration_links_both_directions() {
        let mut cat = Catalog::new();
        let (base, comp) = cat.compensatable("pdm_entry");
        assert_eq!(cat.compensation_of(base), Some(comp));
        assert_eq!(cat.base_of_compensation(comp), Some(base));
        assert_eq!(cat.base(comp), base);
        assert_eq!(cat.base(base), base);
        assert_eq!(cat.def(base).name, "pdm_entry");
        assert_eq!(cat.def(comp).name, "pdm_entry⁻¹");
        cat.validate().unwrap();
    }

    #[test]
    fn compensating_service_is_retriable_not_compensatable() {
        // §3.1: "a compensating activity is (i) itself not compensatable,
        // however, it is (ii) retriable".
        let mut cat = Catalog::new();
        let (_, comp) = cat.compensatable("x");
        assert_eq!(cat.termination(comp), Termination::Retriable);
        assert_eq!(cat.compensation_of(comp), None);
        assert!(cat.def(comp).is_compensating());
    }

    #[test]
    fn pivot_and_retriable_have_no_compensation() {
        let mut cat = Catalog::new();
        let p = cat.pivot("production");
        let r = cat.retriable("documentation");
        assert_eq!(cat.compensation_of(p), None);
        assert_eq!(cat.compensation_of(r), None);
        assert_eq!(cat.termination(p), Termination::Pivot);
        assert_eq!(cat.termination(r), Termination::Retriable);
        assert!(Termination::Pivot.can_fail());
        assert!(!Termination::Retriable.can_fail());
        assert!(Termination::Compensatable.can_fail());
        cat.validate().unwrap();
    }

    #[test]
    fn effect_free_marking() {
        let mut cat = Catalog::new();
        let r = cat.retriable("read_bom");
        assert!(!cat.is_effect_free(r));
        cat.mark_effect_free(r).unwrap();
        assert!(cat.is_effect_free(r));
        assert!(cat.mark_effect_free(ServiceId(99)).is_err());
    }

    #[test]
    fn get_unknown_service_errors() {
        let cat = Catalog::new();
        assert_eq!(
            cat.get(ServiceId(0)).unwrap_err(),
            ModelError::UnknownService(ServiceId(0))
        );
    }

    #[test]
    fn superscripts_match_paper_notation() {
        assert_eq!(Termination::Compensatable.to_string(), "c");
        assert_eq!(Termination::Pivot.to_string(), "p");
        assert_eq!(Termination::Retriable.to_string(), "r");
    }

    #[test]
    fn iter_enumerates_all_services() {
        let mut cat = Catalog::new();
        cat.compensatable("a");
        cat.pivot("b");
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        let names: Vec<_> = cat.iter().map(|(_, d)| d.name.clone()).collect();
        assert_eq!(names, vec!["a", "a⁻¹", "b"]);
    }

    #[test]
    fn validate_rejects_tampered_catalog() {
        let mut cat = Catalog::new();
        let (_base, comp) = cat.compensatable("x");
        // Corrupt: make the compensating service compensatable.
        cat.services[comp.index()].termination = Termination::Compensatable;
        cat.services[comp.index()].compensation = Some(ServiceId(0));
        assert!(cat.validate().is_err());
    }
}
