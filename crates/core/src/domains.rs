//! Conflict domains: connected components of the potential-conflict graph.
//!
//! Two processes *potentially conflict* if some activity of one uses a service
//! that conflicts (Definition 6) with a service used by some activity of the
//! other. The paper's protocol (Lemmas 1–3) only ever orders conflicting
//! operations, so processes in different connected components of this graph
//! impose no ordering obligations on each other: any interleaving of their
//! events commutes, and a schedule is (prefix-)reducible iff its restriction
//! to each component is. [`DomainPartition`] computes these components with a
//! union-find over service footprints; the sharded concurrent driver uses one
//! scheduler state per domain.
//!
//! The partition is workload-static — it is derived from the registered
//! process definitions, not from the history — so it is a sound
//! over-approximation: runtime choices (alternatives taken, activities
//! skipped) can only shrink the real conflict graph. [`DomainPartition::merge`]
//! provides the dynamic-merge path for drivers that discover a cross-domain
//! edge at admission time (e.g. late-registered processes).

use crate::ids::{ProcessId, ServiceId};
use crate::spec::Spec;
use std::collections::BTreeMap;

/// Union-find with path halving and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Partition of the registered processes into conflict domains.
///
/// Domain ids are dense (`0..domain_count()`) and ordered by the smallest
/// member [`ProcessId`], so the labelling is deterministic for a given spec
/// regardless of union order.
#[derive(Debug, Clone)]
pub struct DomainPartition {
    /// Dense index → pid, ascending.
    pids: Vec<ProcessId>,
    /// pid → dense index.
    index: BTreeMap<ProcessId, u32>,
    uf: UnionFind,
    /// Dense index → domain id.
    label: Vec<u32>,
    /// Domain id → member pids, each ascending.
    members: Vec<Vec<ProcessId>>,
}

impl DomainPartition {
    /// Computes the workload-static partition for `spec`'s processes.
    ///
    /// Cost: O(Σ activities + F·S) unions where F is the number of touched
    /// base services and S the footprint sizes — every process touching a
    /// service conflicting with a touched service joins one component, which
    /// is exactly the transitive closure of the pairwise potential-conflict
    /// edges (a complete bipartite block between `touched[s]` and
    /// `touched[t]` is connected whenever both sides are non-empty).
    pub fn partition(spec: &Spec) -> Self {
        let pids: Vec<ProcessId> = spec.processes().map(|p| p.id).collect();
        let index: BTreeMap<ProcessId, u32> = pids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        let mut uf = UnionFind::new(pids.len());

        // Base-service footprints: which processes touch each base service.
        let mut touched: BTreeMap<ServiceId, Vec<u32>> = BTreeMap::new();
        for p in spec.processes() {
            let dense = index[&p.id];
            let mut seen: Vec<ServiceId> = Vec::new();
            for (aid, _) in p.iter() {
                let base = spec.catalog.base(p.service(aid));
                if !seen.contains(&base) {
                    seen.push(base);
                }
            }
            for s in seen {
                touched.entry(s).or_default().push(dense);
            }
        }

        // Union across every conflicting pair of touched services. For s ≠ t
        // the bipartite block touched[s] × touched[t] is connected, so one
        // chain through both lists suffices; for a self-conflicting s every
        // pair in touched[s] is an edge.
        let services: Vec<ServiceId> = touched.keys().copied().collect();
        for (i, &s) in services.iter().enumerate() {
            if spec.conflicts.conflict(&spec.catalog, s, s) {
                let procs = &touched[&s];
                for w in procs.windows(2) {
                    uf.union(w[0], w[1]);
                }
            }
            for &t in &services[i + 1..] {
                if spec.conflicts.conflict(&spec.catalog, s, t) {
                    let (ps, pt) = (&touched[&s], &touched[&t]);
                    let anchor = ps[0];
                    for &p in &ps[1..] {
                        uf.union(anchor, p);
                    }
                    for &q in pt {
                        uf.union(anchor, q);
                    }
                }
            }
        }

        let mut out = Self {
            pids,
            index,
            uf,
            label: Vec::new(),
            members: Vec::new(),
        };
        out.relabel();
        out
    }

    /// Recomputes dense domain labels from the union-find state.
    fn relabel(&mut self) {
        let n = self.pids.len();
        self.label = vec![u32::MAX; n];
        self.members.clear();
        let mut root_to_domain: BTreeMap<u32, u32> = BTreeMap::new();
        // Dense indices ascend with pid, so scanning in order yields domains
        // ordered by smallest member pid.
        for i in 0..n as u32 {
            let root = self.uf.find(i);
            let domain = *root_to_domain.entry(root).or_insert_with(|| {
                self.members.push(Vec::new());
                (self.members.len() - 1) as u32
            });
            self.label[i as usize] = domain;
            self.members[domain as usize].push(self.pids[i as usize]);
        }
    }

    /// Number of conflict domains.
    pub fn domain_count(&self) -> usize {
        self.members.len()
    }

    /// Number of partitioned processes.
    pub fn process_count(&self) -> usize {
        self.pids.len()
    }

    /// The domain id of `pid`, if registered.
    pub fn domain_of(&self, pid: ProcessId) -> Option<u32> {
        self.index.get(&pid).map(|&i| self.label[i as usize])
    }

    /// Member pids of each domain, indexed by domain id.
    pub fn domains(&self) -> &[Vec<ProcessId>] {
        &self.members
    }

    /// Whether two processes share a domain.
    pub fn same_domain(&self, a: ProcessId, b: ProcessId) -> bool {
        match (self.domain_of(a), self.domain_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Dynamic-merge path: fuses the domains of `a` and `b` (e.g. when an
    /// admission would create a cross-shard conflict edge). Returns `true`
    /// and relabels if the domains were distinct; labels stay dense and
    /// ordered by smallest member pid.
    pub fn merge(&mut self, a: ProcessId, b: ProcessId) -> bool {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return false;
        };
        if self.uf.union(ia, ib) {
            self.relabel();
            true
        } else {
            false
        }
    }

    /// Groups domains into at most `max_shards` shard buckets (round-robin by
    /// domain id), returning for each shard its member pids. `max_shards` of
    /// 0 is treated as 1. Used by the sharded driver's `--shards N` mode.
    pub fn shard_groups(&self, max_shards: usize) -> Vec<Vec<ProcessId>> {
        let shards = self.domain_count().min(max_shards.max(1)).max(1);
        let mut groups: Vec<Vec<ProcessId>> = vec![Vec::new(); shards];
        for (domain, members) in self.members.iter().enumerate() {
            groups[domain % shards].extend(members.iter().copied());
        }
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.retain(|g| !g.is_empty());
        groups
    }
}

/// Naive O(n²) reference: pairwise potential-conflict test + BFS components.
///
/// Exists as the differential oracle for [`DomainPartition::partition`];
/// deliberately avoids union-find and footprint bucketing.
pub fn naive_components(spec: &Spec) -> Vec<Vec<ProcessId>> {
    let procs: Vec<_> = spec.processes().collect();
    let n = procs.len();
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            'pairs: for (ai, _) in procs[i].iter() {
                for (aj, _) in procs[j].iter() {
                    let (si, sj) = (procs[i].service(ai), procs[j].service(aj));
                    if spec.conflicts.conflict(&spec.catalog, si, sj) {
                        adj[i][j] = true;
                        adj[j][i] = true;
                        break 'pairs;
                    }
                }
            }
        }
    }
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut queue = vec![start];
        let mut comp = Vec::new();
        seen[start] = true;
        while let Some(i) = queue.pop() {
            comp.push(procs[i].id);
            for (j, &edge) in adj[i].iter().enumerate() {
                if edge && !seen[j] {
                    seen[j] = true;
                    queue.push(j);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components.sort();
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Catalog;
    use crate::conflict::ConflictMatrix;
    use crate::fixtures;
    use crate::process::ProcessBuilder;

    fn spec_with(
        build: impl FnOnce(&mut Catalog, &mut Vec<(ServiceId, ServiceId)>) -> Vec<Vec<ServiceId>>,
    ) -> Spec {
        let mut cat = Catalog::new();
        let mut conflicts = Vec::new();
        let programs = build(&mut cat, &mut conflicts);
        let mut matrix = ConflictMatrix::new(&cat);
        for (a, b) in conflicts {
            matrix.declare_conflict(&cat, a, b).unwrap();
        }
        let mut spec = Spec::new(cat, matrix);
        for (i, program) in programs.into_iter().enumerate() {
            let mut b = ProcessBuilder::new(ProcessId(i as u32 + 1), format!("p{}", i + 1));
            let acts: Vec<_> = program
                .iter()
                .enumerate()
                .map(|(k, &s)| b.activity(format!("a{k}"), s))
                .collect();
            b.chain(&acts);
            spec.add_process(b.build(&spec.catalog).unwrap());
        }
        spec
    }

    #[test]
    fn disjoint_footprints_yield_singleton_domains() {
        let spec = spec_with(|cat, _| {
            let s1 = cat.pivot("s1");
            let s2 = cat.pivot("s2");
            vec![vec![s1], vec![s2]]
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 2);
        assert!(!part.same_domain(ProcessId(1), ProcessId(2)));
    }

    #[test]
    fn shared_service_without_self_conflict_does_not_connect() {
        // Both processes invoke s, but s commutes with itself, so their
        // operations impose no mutual ordering: separate domains.
        let spec = spec_with(|cat, _| {
            let s = cat.pivot("read");
            vec![vec![s], vec![s]]
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 2);
    }

    #[test]
    fn self_conflicting_shared_service_connects() {
        let spec = spec_with(|cat, conflicts| {
            let s = cat.pivot("write");
            conflicts.push((s, s));
            vec![vec![s], vec![s]]
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 1);
        assert!(part.same_domain(ProcessId(1), ProcessId(2)));
    }

    #[test]
    fn transitive_connection_through_middle_process() {
        // p1 uses a, p2 uses b, p3 uses both-conflicting c: a#c, b#c.
        let spec = spec_with(|cat, conflicts| {
            let a = cat.pivot("a");
            let b = cat.pivot("b");
            let c = cat.pivot("c");
            conflicts.push((a, c));
            conflicts.push((b, c));
            vec![vec![a], vec![b], vec![c]]
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 1);
    }

    #[test]
    fn domain_ids_ordered_by_smallest_member() {
        // p1/p3 conflict; p2 isolated. Domain 0 must contain p1.
        let spec = spec_with(|cat, conflicts| {
            let a = cat.pivot("a");
            let b = cat.pivot("b");
            conflicts.push((a, a));
            vec![vec![a], vec![b], vec![a]]
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 2);
        assert_eq!(part.domain_of(ProcessId(1)), Some(0));
        assert_eq!(part.domain_of(ProcessId(3)), Some(0));
        assert_eq!(part.domain_of(ProcessId(2)), Some(1));
        assert_eq!(
            part.domains(),
            &[vec![ProcessId(1), ProcessId(3)], vec![ProcessId(2)]]
        );
    }

    #[test]
    fn compensation_services_map_to_base_footprint() {
        // The conflict is declared over the *compensating* sides; perfect
        // commutativity (mapping through Catalog::base) must still connect
        // the processes invoking the base services.
        let spec = spec_with(|cat, conflicts| {
            let (a, a_inv) = cat.compensatable("a");
            let (b, b_inv) = cat.compensatable("b");
            conflicts.push((a_inv, b_inv));
            vec![vec![a], vec![b]]
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 1);
    }

    #[test]
    fn dynamic_merge_fuses_and_relabels() {
        let spec = spec_with(|cat, _| {
            let s1 = cat.pivot("s1");
            let s2 = cat.pivot("s2");
            let s3 = cat.pivot("s3");
            vec![vec![s1], vec![s2], vec![s3]]
        });
        let mut part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 3);
        assert!(part.merge(ProcessId(1), ProcessId(3)));
        assert_eq!(part.domain_count(), 2);
        assert!(part.same_domain(ProcessId(1), ProcessId(3)));
        assert_eq!(part.domain_of(ProcessId(1)), Some(0));
        assert_eq!(part.domain_of(ProcessId(2)), Some(1));
        // Idempotent.
        assert!(!part.merge(ProcessId(1), ProcessId(3)));
        // Unknown pids are a no-op.
        assert!(!part.merge(ProcessId(1), ProcessId(99)));
    }

    #[test]
    fn shard_groups_cap_and_preserve_domains() {
        let spec = spec_with(|cat, _| {
            let svcs: Vec<_> = (0..5).map(|i| cat.pivot(format!("s{i}"))).collect();
            svcs.iter().map(|&s| vec![s]).collect()
        });
        let part = DomainPartition::partition(&spec);
        assert_eq!(part.domain_count(), 5);
        let groups = part.shard_groups(2);
        assert_eq!(groups.len(), 2);
        let mut all: Vec<_> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (1..=5).map(ProcessId).collect::<Vec<_>>());
        assert_eq!(part.shard_groups(0).len(), 1);
        assert_eq!(part.shard_groups(16).len(), 5);
    }

    #[test]
    fn paper_world_is_one_domain() {
        // Figure 4's processes all conflict pairwise-or-transitively.
        let fx = fixtures::paper_world();
        let part = DomainPartition::partition(&fx.spec);
        assert_eq!(part.domain_count(), 1);
        assert_eq!(naive_components(&fx.spec).len(), 1);
    }

    #[test]
    fn matches_naive_oracle_on_mixed_world() {
        let spec = spec_with(|cat, conflicts| {
            let a = cat.pivot("a");
            let b = cat.pivot("b");
            let c = cat.pivot("c");
            let d = cat.pivot("d");
            conflicts.push((a, b));
            conflicts.push((c, c));
            vec![vec![a], vec![b], vec![c], vec![c, d], vec![d]]
        });
        let part = DomainPartition::partition(&spec);
        let naive = naive_components(&spec);
        let mut got: Vec<Vec<ProcessId>> = part.domains().to_vec();
        got.sort();
        assert_eq!(got, naive);
        // p1+p2 via a#b; p3+p4 via self-conflicting c; p5 alone (d commutes).
        assert_eq!(part.domain_count(), 3);
    }
}
