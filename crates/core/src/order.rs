//! A small strict-partial-order (DAG) utility used for `≪`, `≪_S` and `≪̃_S`.
//!
//! Orders in the paper are irreflexive, transitive and acyclic. We store the
//! declared edges and compute reachability with a bitset-based transitive
//! closure, which keeps the schedule-level algorithms (completion, reduction,
//! PRED) simple and `O(n²/64)` per query batch.

use std::collections::VecDeque;

/// A strict partial order over nodes `0..n`, represented as a DAG.
#[derive(Debug, Clone)]
pub struct PartialOrder {
    n: usize,
    /// Adjacency lists of declared (covering or redundant) edges.
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl PartialOrder {
    /// Creates an empty order over `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the order has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the ordering `a < b`. Duplicate edges are tolerated (they are
    /// kept as parallel edges, which all algorithms here handle; avoiding
    /// the duplicate check keeps insertion O(1) on hot paths).
    ///
    /// # Panics
    /// Panics if `a == b` (the order is irreflexive) or an index is out of
    /// range.
    pub fn add(&mut self, a: usize, b: usize) {
        assert!(a != b, "partial order is irreflexive: {a} < {a}");
        assert!(a < self.n && b < self.n, "node out of range");
        self.succ[a].push(b);
        self.pred[b].push(a);
    }

    /// Declared direct successors of `a`.
    pub fn successors(&self, a: usize) -> &[usize] {
        &self.succ[a]
    }

    /// Declared direct predecessors of `a`.
    pub fn predecessors(&self, a: usize) -> &[usize] {
        &self.pred[a]
    }

    /// Whether the declared edges form a DAG (i.e. the relation is a strict
    /// partial order).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Kahn topological order of all nodes, or `None` if cyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut indeg: Vec<usize> = self.pred.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = (0..self.n).filter(|&v| indeg[v] == 0).collect();
        let mut out = Vec::with_capacity(self.n);
        while let Some(v) = queue.pop_front() {
            out.push(v);
            for &w in &self.succ[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    queue.push_back(w);
                }
            }
        }
        (out.len() == self.n).then_some(out)
    }

    /// Computes the full reachability (transitive closure) as a
    /// [`Reachability`] bitset. `O(n·m/64)`.
    ///
    /// # Panics
    /// Panics if the order is cyclic.
    pub fn reachability(&self) -> Reachability {
        let order = self
            .topological_order()
            .expect("reachability requires an acyclic order");
        let words = self.n.div_ceil(64).max(1);
        let mut reach = vec![0u64; self.n * words];
        // Process in reverse topological order so successors are final.
        for &v in order.iter().rev() {
            for &w in &self.succ[v] {
                // reach[v] |= reach[w] | {w}
                let (lo_v, lo_w) = (v * words, w * words);
                for k in 0..words {
                    let bits = reach[lo_w + k];
                    reach[lo_v + k] |= bits;
                }
                reach[lo_v + w / 64] |= 1u64 << (w % 64);
            }
        }
        Reachability {
            n: self.n,
            words,
            bits: reach,
        }
    }
}

/// Precomputed transitive closure of a [`PartialOrder`].
#[derive(Debug, Clone)]
pub struct Reachability {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Whether `a < b` in the transitive closure.
    #[inline]
    pub fn lt(&self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.n && b < self.n);
        self.bits[a * self.words + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// Whether `a` and `b` are ordered either way.
    #[inline]
    pub fn comparable(&self, a: usize, b: usize) -> bool {
        self.lt(a, b) || self.lt(b, a)
    }

    /// Whether `m` lies strictly between `a` and `b` (i.e. `a < m < b`).
    #[inline]
    pub fn between(&self, a: usize, m: usize, b: usize) -> bool {
        self.lt(a, m) && self.lt(m, b)
    }

    /// All nodes strictly after `a`.
    pub fn after(&self, a: usize) -> Vec<usize> {
        (0..self.n).filter(|&b| self.lt(a, b)).collect()
    }

    /// All nodes strictly before `a`.
    pub fn before(&self, a: usize) -> Vec<usize> {
        (0..self.n).filter(|&b| self.lt(b, a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_reachability() {
        let mut po = PartialOrder::new(4);
        po.add(0, 1);
        po.add(1, 2);
        po.add(2, 3);
        let r = po.reachability();
        assert!(r.lt(0, 3));
        assert!(r.lt(0, 1));
        assert!(!r.lt(3, 0));
        assert!(!r.lt(0, 0));
        assert!(r.between(0, 1, 2));
        assert!(r.between(0, 2, 3));
        assert!(!r.between(1, 0, 2));
    }

    #[test]
    fn diamond_incomparable_middle() {
        let mut po = PartialOrder::new(4);
        po.add(0, 1);
        po.add(0, 2);
        po.add(1, 3);
        po.add(2, 3);
        let r = po.reachability();
        assert!(r.lt(0, 3));
        assert!(!r.comparable(1, 2));
        assert!(r.comparable(0, 3));
        assert_eq!(r.after(0), vec![1, 2, 3]);
        assert_eq!(r.before(3), vec![0, 1, 2]);
    }

    #[test]
    fn cycle_detected() {
        let mut po = PartialOrder::new(3);
        po.add(0, 1);
        po.add(1, 2);
        po.add(2, 0);
        assert!(!po.is_acyclic());
        assert!(po.topological_order().is_none());
    }

    #[test]
    #[should_panic(expected = "irreflexive")]
    fn reflexive_edge_panics() {
        let mut po = PartialOrder::new(2);
        po.add(1, 1);
    }

    #[test]
    fn duplicate_edges_tolerated() {
        let mut po = PartialOrder::new(2);
        po.add(0, 1);
        po.add(0, 1);
        assert!(po.is_acyclic());
        assert_eq!(po.topological_order(), Some(vec![0, 1]));
        let r = po.reachability();
        assert!(r.lt(0, 1));
        assert!(!r.lt(1, 0));
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut po = PartialOrder::new(5);
        po.add(3, 1);
        po.add(1, 4);
        po.add(3, 0);
        po.add(0, 2);
        let order = po.topological_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[3] < pos[1] && pos[1] < pos[4]);
        assert!(pos[3] < pos[0] && pos[0] < pos[2]);
    }

    #[test]
    fn empty_order() {
        let po = PartialOrder::new(0);
        assert!(po.is_empty());
        assert!(po.is_acyclic());
        let _ = po.reachability();
    }

    #[test]
    fn wide_order_crossing_word_boundaries() {
        // More than 64 nodes to exercise multi-word bitsets.
        let n = 130;
        let mut po = PartialOrder::new(n);
        for i in 0..n - 1 {
            po.add(i, i + 1);
        }
        let r = po.reachability();
        assert!(r.lt(0, n - 1));
        assert!(r.lt(63, 64));
        assert!(r.lt(64, 129));
        assert!(!r.lt(129, 0));
        assert_eq!(r.before(129).len(), 129);
        assert_eq!(r.after(0).len(), 129);
    }
}
