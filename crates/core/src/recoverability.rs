//! Process-recoverability (Definition 11), Theorem 1, and the SOT
//! impossibility discussion of §3.5.
//!
//! A schedule is **process-recoverable** (Proc-REC) when for every
//! conflicting pair `a_{i_k} ≪_S a_{j_l}`:
//!
//! 1. `C_i` precedes `C_j` (commit order follows the conflict order), and
//! 2. the next non-compensatable activity of `P_j` following `a_{j_l}`
//!    succeeds the next non-compensatable activity of `P_i` following
//!    `a_{i_k}`.
//!
//! **Theorem 1**: PRED ⇒ serializable ∧ Proc-REC. [`theorem1_holds`] checks
//! the implication on a concrete schedule and backs the randomized
//! validation experiment (E10).
//!
//! §3.5 argues that an *SOT-like* criterion — one that only inspects the
//! given schedule `S` and its termination events, never the completed
//! schedule `S̃` — cannot exist for transactional processes, because the
//! completion introduces activities (and conflicts) that are not visible in
//! `S`. [`sot_like`] implements such a criterion faithfully; experiment E12
//! exhibits schedules it accepts that are not PRED.

use crate::error::ScheduleError;
use crate::ids::ProcessId;
use crate::pred::is_pred;
use crate::schedule::{Op, OpKind, Schedule};
use crate::serializability::is_serializable;
use crate::spec::Spec;

/// One Proc-REC violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcRecViolation {
    /// `C_j` appears although `C_i` does not precede it (Definition 11.1).
    CommitOrder {
        /// Process whose commit is missing or late.
        earlier: ProcessId,
        /// Process that committed too early.
        later: ProcessId,
    },
    /// The next non-compensatable activities are ordered the wrong way
    /// (Definition 11.2).
    PivotOrder {
        /// Process whose non-compensatable activity must come first.
        earlier: ProcessId,
        /// Process whose non-compensatable activity must come later.
        later: ProcessId,
    },
}

/// Checks process-recoverability (Definition 11). Returns all violations.
///
/// One refinement relative to the literal definition, following §3.5's
/// quasi-commit discussion (Example 10): a conflicting pair whose earlier
/// activity was *quasi-committed* — a later non-compensatable activity of
/// the same process had already committed when the second activity executed,
/// so the earlier activity can never be compensated again — imposes no
/// recovery-relevant ordering and is skipped. Without this refinement the
/// correct interleaving of Figure 9 would be flagged.
pub fn proc_rec_violations(
    spec: &Spec,
    schedule: &Schedule,
) -> Result<Vec<ProcRecViolation>, ScheduleError> {
    let replay = schedule.replay(spec)?;
    let ops = &replay.ops;
    let oracle = spec.oracle();
    // Activities compensated within S impose no dependency once cancelled.
    let compensated: std::collections::BTreeSet<crate::ids::GlobalActivityId> = ops
        .iter()
        .filter(|o| o.kind == OpKind::Compensation)
        .map(|o| o.gid)
        .collect();
    let mut violations = Vec::new();
    for (u, x) in ops.iter().enumerate() {
        for y in &ops[u + 1..] {
            if x.gid.process == y.gid.process || !oracle.conflict(x.service, y.service) {
                continue;
            }
            let (pi, pj) = (x.gid.process, y.gid.process);
            // Cancelled pairs: a compensated activity vanishes under the
            // compensation rule and constrains nothing.
            if (x.kind == OpKind::Forward && compensated.contains(&x.gid))
                || (y.kind == OpKind::Forward && compensated.contains(&y.gid))
            {
                continue;
            }
            // Quasi-commit (§3.5, Example 10): once a non-compensatable
            // activity of P_i at or after a_{i_k} commits, a_{i_k} can never
            // be compensated again and imposes no recovery-relevant ordering
            // from that moment on. `stable_by(limit)` tests whether that
            // already happened before the given event position.
            let stable_by = |limit: usize| {
                ops[u..].iter().any(|z| {
                    z.gid.process == pi
                        && z.kind == OpKind::Forward
                        && z.event_index < limit
                        && !spec.catalog.termination(z.service).is_compensatable()
                })
            };
            // A compensating operation as the *earlier* element imposes no
            // obligation under either condition: a compensation is itself
            // recovery and is never undone again, so neither P_j committing
            // first (11.1) nor P_j stabilizing first (11.2) can strand it.
            // Definition 11 ranges over the processes' activities a_{i_k};
            // the a⁻¹ operations enter the history only as recovery steps.
            // E11's trace-backed triage found the scheduler legitimately
            // emitting `a⁻¹ ≪ b` with the compensating process's next pivot
            // one event after `b`; the crash-storm gauntlet (E22) found the
            // commit-order analogue, where a process cancels an alternative
            // branch (a, a⁻¹) and a conflicting activity of a process that
            // commits earlier lands *after* the pair — the cancelled pair
            // vanishes under reduction, the history is PRED (Theorem 1 then
            // demands Proc-REC), and only the literal pair scan objected.
            if x.kind == OpKind::Compensation {
                continue;
            }
            // 11.1: C_i must precede C_j. The definition constrains commit
            // events of S; aborted processes commit only by conversion
            // (Definition 8.2c) at a position the completion construction is
            // free to choose, so only explicit commits are compared, and a
            // pair whose earlier activity was quasi-committed before C_j is
            // exempt.
            if let (Some(&ti), Some(&tj)) =
                (replay.commit_event.get(&pi), replay.commit_event.get(&pj))
            {
                if ti >= tj && !stable_by(tj) {
                    violations.push(ProcRecViolation::CommitOrder {
                        earlier: pi,
                        later: pj,
                    });
                }
            }
            // 11.2: next non-compensatable of P_j after a_{j_l} must follow
            // the next non-compensatable of P_i after a_{i_k}. Completion
            // activities (executed after the process's abort) are excluded:
            // their mutual order is Definition 8.3's choice, not a
            // recovery-relevant commit decision.
            let next_nc = |start: &Op| {
                let abort_at = replay.abort_event.get(&start.gid.process).copied();
                ops.iter()
                    .filter(|o| {
                        o.gid.process == start.gid.process
                            && o.index >= start.index
                            && o.kind == OpKind::Forward
                            && abort_at.is_none_or(|a| o.event_index < a)
                            && !spec.catalog.termination(o.service).is_compensatable()
                    })
                    .map(|o| o.index)
                    .next()
            };
            if let (Some(ni), Some(nj)) = (next_nc(x), next_nc(y)) {
                if nj < ni && !stable_by(ops[nj].event_index) {
                    violations.push(ProcRecViolation::PivotOrder {
                        earlier: pi,
                        later: pj,
                    });
                }
            }
        }
    }
    violations.dedup();
    Ok(violations)
}

/// Whether a schedule is process-recoverable (Definition 11).
pub fn is_proc_rec(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    Ok(proc_rec_violations(spec, schedule)?.is_empty())
}

/// Checks Theorem 1 on a concrete schedule: if the schedule is PRED it must
/// be both serializable (in its committed projection, exactly as the proof
/// argues) and process-recoverable. Returns `true` when the implication
/// holds (vacuously true for non-PRED schedules).
pub fn theorem1_holds(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    if !is_pred(spec, schedule)? {
        return Ok(true);
    }
    Ok(
        crate::serializability::is_serializable_committed(spec, schedule)?
            && is_proc_rec(spec, schedule)?,
    )
}

/// An SOT-like criterion (serializable with ordered termination, \[AVA⁺94\])
/// evaluated **only on `S`**: the schedule must be conflict-serializable and
/// the termination events of conflicting processes must follow the conflict
/// order. §3.5 shows no such criterion can be sound for transactional
/// processes; see experiment E12.
pub fn sot_like(spec: &Spec, schedule: &Schedule) -> Result<bool, ScheduleError> {
    if !is_serializable(spec, schedule)? {
        return Ok(false);
    }
    let replay = schedule.replay(spec)?;
    let ops = &replay.ops;
    let oracle = spec.oracle();
    let termination_event = |p: ProcessId| {
        replay
            .commit_event
            .get(&p)
            .or_else(|| replay.abort_event.get(&p))
            .copied()
    };
    for (u, x) in ops.iter().enumerate() {
        for y in &ops[u + 1..] {
            if x.gid.process == y.gid.process || !oracle.conflict(x.service, y.service) {
                continue;
            }
            if let (Some(ti), Some(tj)) = (
                termination_event(x.gid.process),
                termination_event(y.gid.process),
            ) {
                if tj < ti {
                    return Ok(false);
                }
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    /// A PRED schedule: Figure 7's interleaving with commits.
    fn pred_schedule(fx: &fixtures::PaperWorld) -> Schedule {
        let mut s = Schedule::new();
        s.execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 1))
            .execute(fx.a(2, 5))
            .commit(ProcessId(2))
            .execute(fx.a(1, 2))
            .execute(fx.a(1, 3))
            .execute(fx.a(1, 4))
            .commit(ProcessId(1));
        s
    }

    #[test]
    fn theorem1_on_pred_schedule() {
        let fx = fixtures::paper_world();
        let s = pred_schedule(&fx);
        assert!(is_pred(&fx.spec, &s).unwrap());
        assert!(is_serializable(&fx.spec, &s).unwrap());
        assert!(is_proc_rec(&fx.spec, &s).unwrap());
        assert!(theorem1_holds(&fx.spec, &s).unwrap());
    }

    #[test]
    fn commit_order_violation_detected() {
        // Conflict a1_1 ≪ a2_1 but C₂ before C₁ violates Definition 11.1.
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1));
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        for k in 2..=4 {
            s.execute(fx.a(1, k));
        }
        s.commit(ProcessId(1));
        let violations = proc_rec_violations(&fx.spec, &s).unwrap();
        assert!(violations.iter().any(
            |v| matches!(v, ProcRecViolation::CommitOrder { earlier, later }
                if *earlier == ProcessId(1) && *later == ProcessId(2))
        ));
    }

    #[test]
    fn pivot_order_violation_detected() {
        // a1_1 ≪ a2_1 conflict, but P₂'s pivot a2_3 commits before P₁'s
        // pivot a1_2 — the Example 8 situation (Definition 11.2).
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(1, 2));
        let violations = proc_rec_violations(&fx.spec, &s).unwrap();
        assert!(violations.iter().any(
            |v| matches!(v, ProcRecViolation::PivotOrder { earlier, later }
                if *earlier == ProcessId(1) && *later == ProcessId(2))
        ));
    }

    #[test]
    fn theorem1_vacuous_on_non_pred() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(3, 1))
            .execute(fx.a(3, 2))
            .commit(ProcessId(3));
        assert!(!is_pred(&fx.spec, &s).unwrap());
        assert!(theorem1_holds(&fx.spec, &s).unwrap());
    }

    #[test]
    fn sot_like_accepts_a_non_pred_schedule() {
        // §3.5 / E12: the prefix S_t1 of Example 8 is serializable and has no
        // termination events at all, so an SOT-like criterion accepts it —
        // yet it is not reducible once completed.
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4));
        assert!(sot_like(&fx.spec, &s).unwrap());
        assert!(!is_pred(&fx.spec, &s).unwrap());
    }

    #[test]
    fn sot_like_rejects_non_serializable() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1))
            .execute(fx.a(2, 1))
            .execute(fx.a(2, 2))
            .execute(fx.a(2, 3))
            .execute(fx.a(2, 4))
            .execute(fx.a(1, 2));
        assert!(!sot_like(&fx.spec, &s).unwrap());
    }

    #[test]
    fn sot_like_rejects_wrong_termination_order() {
        let fx = fixtures::paper_world();
        let mut s = Schedule::new();
        s.execute(fx.a(1, 1));
        for k in 1..=5 {
            s.execute(fx.a(2, k));
        }
        s.commit(ProcessId(2));
        for k in 2..=4 {
            s.execute(fx.a(1, k));
        }
        s.commit(ProcessId(1));
        assert!(!sot_like(&fx.spec, &s).unwrap());
    }
}
