//! Durable write-ahead journal: length-prefixed, CRC-framed typed records.
//!
//! The PR-3 trace journal is a totally-ordered record of every scheduler
//! decision, but it lives in memory; nothing survives a real crash. This
//! module gives that record a durable on-disk form. Each frame is
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 of payload][payload JSON]
//! ```
//!
//! and the reader stops at the first frame that is short, fails its CRC, or
//! does not parse — the *torn tail* a kill -9 mid-write leaves behind. The
//! clean byte length is reported so recovery can truncate the log back to
//! the last complete record and re-append from there.
//!
//! Two disciplines are load-bearing (the icydb audit in SNIPPETS.md #2):
//!
//! 1. **Write-ahead ordering** — the record describing an effect is appended
//!    to the log *before* the effect is applied to any in-memory or
//!    subsystem state. A crash can therefore lose intent (a logged record
//!    whose effect never happened — replay re-applies it) but never an
//!    effect (an applied change with no record — impossible by ordering).
//! 2. **Idempotent replay** — replaying a prefix of the log against fresh
//!    state reconstructs exactly the state the prefix describes; replaying
//!    it again is a no-op. The crash-point sweep in
//!    `crates/engine/tests/wal_crash_sweep.rs` pins both.
//!
//! Sync cadence is a [`DurabilityPolicy`]: per-record fsync for the
//! paranoid, group fsync on PR-9 epoch boundaries for throughput, buffered
//! (OS-flushed, never fsynced) for tests and benches, or none.

use crate::ids::GlobalActivityId;
use crate::schedule::Event;
use serde::{Deserialize, Serialize};
use std::io::Write as _;
use std::sync::{Arc, Mutex};

/// Version tag written in the [`WalRecord::Begin`] header record.
pub const WAL_VERSION: u32 = 1;

/// How aggressively the WAL writer makes appended records durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// No durability: records are buffered and only flushed on drop.
    /// (Config level: no WAL at all.)
    None,
    /// Records are written to the store promptly but never fsynced —
    /// survives a process crash, not a machine crash.
    Buffered,
    /// fsync after every `n` appended records (`n = 1` is classic
    /// commit-record-to-disk-before-ack).
    FsyncEveryN(u64),
    /// Group fsync once per sealed epoch (PR-9 epoch boundaries double as
    /// group-commit points).
    FsyncPerEpoch,
}

impl DurabilityPolicy {
    /// Short CLI/bench label, e.g. `fsync-epoch`.
    pub fn label(&self) -> String {
        match self {
            DurabilityPolicy::None => "none".to_string(),
            DurabilityPolicy::Buffered => "buffered".to_string(),
            DurabilityPolicy::FsyncEveryN(n) => format!("fsync-{n}"),
            DurabilityPolicy::FsyncPerEpoch => "fsync-epoch".to_string(),
        }
    }

    /// Parses a CLI label: `none | buffered | fsync-N | fsync-epoch`.
    pub fn parse(raw: &str) -> Option<DurabilityPolicy> {
        match raw {
            "none" => Some(DurabilityPolicy::None),
            "buffered" => Some(DurabilityPolicy::Buffered),
            "fsync-epoch" => Some(DurabilityPolicy::FsyncPerEpoch),
            other => other
                .strip_prefix("fsync-")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .map(DurabilityPolicy::FsyncEveryN),
        }
    }
}

/// One typed durable record.
///
/// Subsystem and invocation identifiers are carried as raw integers so the
/// core crate stays decoupled from `txproc-subsystem`; the engine's
/// durability layer owns the mapping back to typed ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// First record of every log: format version and workload seed.
    Begin {
        /// WAL format version ([`WAL_VERSION`]).
        version: u32,
        /// Seed of the workload this log belongs to.
        seed: u64,
    },
    /// A history event, appended atomically with its in-memory effect.
    /// `Fail`/`Commit`/`Abort`/`GroupAbort` are history-only; an `Execute`
    /// here is the *release* of a previously prepared invocation (the
    /// prepare itself was a [`WalRecord::Invocation`]); a `Compensate`
    /// additionally implies the compensating transaction at the agent —
    /// replay re-applies both halves from the one record, so every log
    /// prefix is a consistent state.
    Event {
        /// The history event.
        event: Event,
    },
    /// A service invocation accepted by a subsystem agent. Replaying these
    /// in log order against fresh agents reproduces the same invocation
    /// ids (agents allocate ids densely and only on success). When
    /// `prepared` is false the record also implies the `Execute` history
    /// event — one atomic record for agent effect + history append.
    Invocation {
        /// The activity the invocation executes.
        gid: GlobalActivityId,
        /// Subsystem that accepted the invocation.
        subsystem: u32,
        /// Invocation id the agent allocated.
        invocation: u64,
        /// `true` when invoked prepare-and-defer (Lemma 2); the commit is
        /// released by a later 2PC [`WalRecord::Decision`].
        prepared: bool,
    },
    /// A prepared invocation was aborted directly at its agent (the owning
    /// process aborted before its deferred commit was released).
    PreparedAborted {
        /// Subsystem holding the prepared invocation.
        subsystem: u32,
        /// The aborted invocation.
        invocation: u64,
    },
    /// A 2PC decision was logged by the coordinator (phase 1 complete).
    /// Appended before any participant learns the outcome.
    Decision {
        /// Coordinator-assigned group id.
        group: u64,
        /// `true` = commit, `false` = abort.
        commit: bool,
        /// `(subsystem, invocation)` participants.
        participants: Vec<(u32, u64)>,
    },
    /// Phase 2 of the group completed: every participant applied the
    /// decision. A crash between `Decision` and `DecisionApplied` leaves
    /// the group in doubt; recovery finishes it from the decision record.
    DecisionApplied {
        /// The completed group.
        group: u64,
    },
    /// An epoch boundary was sealed (group-commit point under
    /// [`DurabilityPolicy::FsyncPerEpoch`]).
    EpochSeal {
        /// Monotonic epoch counter.
        epoch: u64,
    },
    /// A history event of one shard of the concurrent driver, stamped with
    /// its global merge ticket. Sorting by ticket reconstructs the merged
    /// history.
    ShardEvent {
        /// Shard that appended the event.
        shard: u32,
        /// Global merge ticket (total order across shards).
        ticket: u64,
        /// The history event.
        event: Event,
    },
    /// A full state snapshot. The payload is an opaque JSON document owned
    /// by the layer that wrote it (the engine's `DurableSnapshot`); replay
    /// restores from the last complete snapshot and applies the log tail.
    SnapshotMarker {
        /// Serialized snapshot document.
        payload: String,
    },
}

/// Computes the CRC-32 (IEEE 802.3, reflected) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table built on first use; no external crc dependency.
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, slot) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *slot = c;
            }
            t
        })
    }
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes one record as a framed byte sequence.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record)
        .expect("WAL records serialize infallibly")
        .into_bytes();
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parses every complete, CRC-clean record from `bytes`.
///
/// Returns the records plus the *clean length*: the byte offset just past
/// the last intact frame. Anything beyond it is a torn tail (short header,
/// short payload, CRC mismatch, or unparseable JSON) and must be truncated
/// before appending resumes.
pub fn read_records(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let Some(end) = at.checked_add(8).and_then(|s| s.checked_add(len)) else {
            break;
        };
        if end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[at + 8..end];
        if crc32(payload) != crc {
            break; // bit rot or a torn rewrite
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = serde_json::from_str::<WalRecord>(text) else {
            break;
        };
        records.push(record);
        at = end;
    }
    (records, at)
}

/// Byte sink a [`WalWriter`] appends frames to.
pub trait WalStore: Send {
    /// Appends raw bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Makes everything appended so far durable (fsync or its stand-in).
    fn sync(&mut self) -> std::io::Result<()>;
}

#[derive(Debug, Default)]
struct MemWalInner {
    bytes: Vec<u8>,
    syncs: u64,
}

/// In-memory WAL store with a cloneable read handle — the crash-sweep
/// harness truncates its contents at arbitrary offsets to model kill -9.
#[derive(Debug, Clone, Default)]
pub struct MemWal {
    inner: Arc<Mutex<MemWalInner>>,
}

impl MemWal {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of the full log contents appended so far.
    pub fn contents(&self) -> Vec<u8> {
        self.lock().bytes.clone()
    }

    /// Number of bytes appended so far.
    pub fn len(&self) -> usize {
        self.lock().bytes.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times `sync` was called (the mem-store fsync stand-in).
    pub fn syncs(&self) -> u64 {
        self.lock().syncs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemWalInner> {
        // Poison-tolerant: a panicking writer must not wedge the reader the
        // crash harness uses to inspect the surviving prefix.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl WalStore for MemWal {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.lock().bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.lock().syncs += 1;
        Ok(())
    }
}

/// File-backed WAL store (`sync` = `File::sync_data`).
#[derive(Debug)]
pub struct FileWal {
    file: std::fs::File,
}

impl FileWal {
    /// Creates (truncating) a log file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<FileWal> {
        Ok(FileWal {
            file: std::fs::File::create(path)?,
        })
    }

    /// Opens an existing log for appending (recovery re-opens the clean
    /// prefix this way after truncating the torn tail).
    pub fn append_to(path: &std::path::Path) -> std::io::Result<FileWal> {
        Ok(FileWal {
            file: std::fs::OpenOptions::new().append(true).open(path)?,
        })
    }
}

impl WalStore for FileWal {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// Reads a WAL file, returning its records and clean byte length.
pub fn read_wal_file(path: &std::path::Path) -> std::io::Result<(Vec<WalRecord>, usize)> {
    let bytes = std::fs::read(path)?;
    Ok(read_records(&bytes))
}

/// Buffering, policy-driven writer of framed records.
///
/// Encoded frames accumulate in an internal buffer; the policy decides when
/// they reach the store (`flush`) and when the store is made durable
/// (`sync`). The writer flushes on drop so a clean shutdown never loses
/// records, and the buffer is bounded so `Buffered` runs do not hold the
/// whole log in memory.
pub struct WalWriter {
    store: Box<dyn WalStore>,
    policy: DurabilityPolicy,
    buf: Vec<u8>,
    since_sync: u64,
    records: u64,
    bytes: u64,
    syncs: u64,
    epochs_sealed: u64,
}

/// Flush the buffer to the store once it crosses this many bytes, even
/// under `Buffered`/`None` (keeps memory bounded on long runs).
const FLUSH_THRESHOLD: usize = 64 * 1024;

impl WalWriter {
    /// Creates a writer over `store` with the given sync policy, appending
    /// the [`WalRecord::Begin`] header.
    pub fn new(store: Box<dyn WalStore>, policy: DurabilityPolicy, seed: u64) -> WalWriter {
        let mut w = WalWriter {
            store,
            policy,
            buf: Vec::new(),
            since_sync: 0,
            records: 0,
            bytes: 0,
            syncs: 0,
            epochs_sealed: 0,
        };
        w.append(&WalRecord::Begin {
            version: WAL_VERSION,
            seed,
        });
        w
    }

    /// Appends one record, applying the sync policy.
    pub fn append(&mut self, record: &WalRecord) {
        let frame = encode_record(record);
        self.bytes += frame.len() as u64;
        self.records += 1;
        self.buf.extend_from_slice(&frame);
        match self.policy {
            DurabilityPolicy::FsyncEveryN(n) => {
                self.since_sync += 1;
                if self.since_sync >= n {
                    self.flush();
                    self.sync();
                }
            }
            DurabilityPolicy::Buffered => {
                if self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush();
                }
            }
            DurabilityPolicy::None | DurabilityPolicy::FsyncPerEpoch => {
                if self.buf.len() >= FLUSH_THRESHOLD {
                    self.flush();
                }
            }
        }
    }

    /// Appends an [`WalRecord::EpochSeal`] and, under `FsyncPerEpoch`,
    /// group-fsyncs everything the epoch appended.
    pub fn seal_epoch(&mut self, epoch: u64) {
        self.append(&WalRecord::EpochSeal { epoch });
        self.epochs_sealed += 1;
        match self.policy {
            DurabilityPolicy::FsyncPerEpoch => {
                self.flush();
                self.sync();
            }
            DurabilityPolicy::Buffered => self.flush(),
            _ => {}
        }
    }

    /// Writes buffered frames to the store (no fsync).
    pub fn flush(&mut self) {
        if !self.buf.is_empty() {
            // A full store is unrecoverable mid-run; surfacing it as a panic
            // keeps the write-ahead invariant honest (no effect proceeds
            // past an unlogged record).
            self.store.append(&self.buf).expect("WAL store append");
            self.buf.clear();
        }
    }

    /// Flushes and makes the store durable.
    pub fn sync(&mut self) {
        self.flush();
        self.store.sync().expect("WAL store sync");
        self.syncs += 1;
        self.since_sync = 0;
    }

    /// Clean end of run: flushes, and makes the store durable under the
    /// fsync policies. `None`/`Buffered` stay unsynced — they never
    /// promised durability and must not masquerade as having it.
    pub fn finish(&mut self) {
        self.flush();
        if matches!(
            self.policy,
            DurabilityPolicy::FsyncEveryN(_) | DurabilityPolicy::FsyncPerEpoch
        ) {
            self.sync();
        }
    }

    /// Total records appended (including `Begin` and epoch seals).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total framed bytes appended.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// How many times the store was synced.
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// How many epoch seals were appended.
    pub fn epochs_sealed(&self) -> u64 {
        self.epochs_sealed
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Best-effort flush — including during a panic unwind, so the log's
        // durable prefix is as long as the run got. Never sync here: a
        // crashing `None`/`Buffered` run should not masquerade as durable.
        if !self.buf.is_empty() {
            let _ = self.store.append(&self.buf);
            self.buf.clear();
        }
    }
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("policy", &self.policy)
            .field("records", &self.records)
            .field("bytes", &self.bytes)
            .field("syncs", &self.syncs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ActivityId, GlobalActivityId, ProcessId};

    fn gid(p: u32, a: u32) -> GlobalActivityId {
        GlobalActivityId {
            process: ProcessId(p),
            activity: ActivityId(a),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin {
                version: WAL_VERSION,
                seed: 7,
            },
            WalRecord::Invocation {
                gid: gid(1, 0),
                subsystem: 2,
                invocation: 5,
                prepared: true,
            },
            WalRecord::Event {
                event: Event::Execute(gid(1, 0)),
            },
            WalRecord::Decision {
                group: 3,
                commit: true,
                participants: vec![(2, 5), (0, 1)],
            },
            WalRecord::DecisionApplied { group: 3 },
            WalRecord::PreparedAborted {
                subsystem: 2,
                invocation: 6,
            },
            WalRecord::EpochSeal { epoch: 1 },
            WalRecord::ShardEvent {
                shard: 1,
                ticket: 42,
                event: Event::Commit(ProcessId(1)),
            },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let (parsed, clean) = read_records(&bytes);
        assert_eq!(parsed, records);
        assert_eq!(clean, bytes.len());
    }

    #[test]
    fn torn_tail_truncates_to_record_boundary() {
        let records = sample_records();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
            boundaries.push(bytes.len());
        }
        // Every truncation point — boundary or mid-record — parses back to
        // the longest complete prefix at or before it.
        for cut in 0..=bytes.len() {
            let (parsed, clean) = read_records(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(parsed.len(), expect, "cut at {cut}");
            assert_eq!(clean, boundaries[expect], "cut at {cut}");
            assert_eq!(parsed[..], records[..expect], "cut at {cut}");
        }
    }

    #[test]
    fn crc_mismatch_stops_parse() {
        let records = sample_records();
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let first_len = encode_record(&records[0]).len();
        // Flip one payload byte of the second record.
        bytes[first_len + 9] ^= 0x01;
        let (parsed, clean) = read_records(&bytes);
        assert_eq!(parsed.len(), 1);
        assert_eq!(clean, first_len);
    }

    #[test]
    fn insane_length_prefix_is_a_torn_tail() {
        let mut bytes = encode_record(&sample_records()[0]);
        let clean_len = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 12]);
        let (parsed, clean) = read_records(&bytes);
        assert_eq!(parsed.len(), 1);
        assert_eq!(clean, clean_len);
    }

    #[test]
    fn writer_policies_drive_sync_cadence() {
        for (policy, appends, seals, want_syncs) in [
            (DurabilityPolicy::FsyncEveryN(1), 4u64, 0u64, 5u64), // + Begin
            (DurabilityPolicy::FsyncEveryN(2), 4, 0, 2),          // Begin+1, then 2
            (DurabilityPolicy::FsyncPerEpoch, 4, 2, 2),
            (DurabilityPolicy::Buffered, 4, 2, 0),
            (DurabilityPolicy::None, 4, 0, 0),
        ] {
            let mem = MemWal::new();
            let mut w = WalWriter::new(Box::new(mem.clone()), policy, 1);
            for i in 0..appends {
                w.append(&WalRecord::Event {
                    event: Event::Commit(ProcessId(i as u32)),
                });
            }
            for e in 0..seals {
                w.seal_epoch(e);
            }
            assert_eq!(mem.syncs(), want_syncs, "{policy:?}");
            drop(w);
            let (records, clean) = read_records(&mem.contents());
            assert_eq!(clean, mem.len(), "{policy:?}: clean drop leaves no tail");
            assert_eq!(records.len(), (1 + appends + seals) as usize, "{policy:?}");
        }
    }

    #[test]
    fn file_store_round_trips() {
        let dir = std::env::temp_dir().join("txproc_wal_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let store = FileWal::create(&path).unwrap();
        let mut w = WalWriter::new(Box::new(store), DurabilityPolicy::FsyncEveryN(1), 9);
        w.append(&WalRecord::Event {
            event: Event::Abort(ProcessId(3)),
        });
        w.seal_epoch(0);
        drop(w);
        let (records, clean) = read_wal_file(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(clean, std::fs::metadata(&path).unwrap().len() as usize);
        assert!(matches!(
            records[0],
            WalRecord::Begin {
                version: WAL_VERSION,
                seed: 9
            }
        ));
        // Truncate to the torn tail and confirm append_to resumes cleanly.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..clean - 3]).unwrap();
        let (records, clean2) = read_wal_file(&path).unwrap();
        assert_eq!(records.len(), 2);
        let keep = bytes[..clean2].to_vec();
        std::fs::write(&path, &keep).unwrap();
        let store = FileWal::append_to(&path).unwrap();
        let mut w = WalWriter::new(Box::new(store), DurabilityPolicy::Buffered, 9);
        w.append(&WalRecord::EpochSeal { epoch: 7 });
        drop(w);
        let (records, _) = read_wal_file(&path).unwrap();
        assert_eq!(records.len(), 4, "resumed log parses end to end");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_marker_carries_opaque_payload() {
        let payload = "{\"history\": [1, 2, 3]}".to_string();
        let rec = WalRecord::SnapshotMarker {
            payload: payload.clone(),
        };
        let bytes = encode_record(&rec);
        let (parsed, _) = read_records(&bytes);
        assert_eq!(parsed, vec![WalRecord::SnapshotMarker { payload }]);
    }

    #[test]
    fn durability_policy_labels_round_trip() {
        for p in [
            DurabilityPolicy::None,
            DurabilityPolicy::Buffered,
            DurabilityPolicy::FsyncEveryN(1),
            DurabilityPolicy::FsyncEveryN(8),
            DurabilityPolicy::FsyncPerEpoch,
        ] {
            assert_eq!(DurabilityPolicy::parse(&p.label()), Some(p));
        }
        assert_eq!(DurabilityPolicy::parse("fsync-0"), None);
        assert_eq!(DurabilityPolicy::parse("bogus"), None);
    }
}
