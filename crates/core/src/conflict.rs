//! Commutativity and conflicts between activities (§3.2, Definition 6).
//!
//! Two activities *commute* if executing them in either order yields the same
//! return values in every context; otherwise they *conflict*. Following the
//! paper (and \[VHYBS98\]) commutativity is declared over the services of Â as
//! a symmetric relation, and is assumed to be **perfect**: a compensating
//! activity `a⁻¹` conflicts with exactly the activities its base activity `a`
//! conflicts with. The [`ConflictMatrix`] enforces perfection structurally by
//! storing the relation over *base* services only and mapping every query
//! through [`Catalog::base`](crate::activity::Catalog::base).

use crate::activity::Catalog;
use crate::error::ModelError;
use crate::ids::ServiceId;
use serde::{Deserialize, Serialize};

/// Symmetric conflict relation over the services of Â.
///
/// Stored as a bitmap over pairs of base services. An activity always
/// conflicts with itself (invoking the same non-commuting service twice) only
/// if declared; self-conflicts are common (two writes to the same object do
/// not commute) but not implied.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConflictMatrix {
    n: usize,
    bits: Vec<u64>,
}

impl ConflictMatrix {
    /// Creates an all-commuting matrix for a catalog of `catalog.len()`
    /// services.
    pub fn new(catalog: &Catalog) -> Self {
        let n = catalog.len();
        let words = (n * n).div_ceil(64);
        Self {
            n,
            bits: vec![0; words],
        }
    }

    #[inline]
    fn idx(&self, a: ServiceId, b: ServiceId) -> (usize, u64) {
        let flat = a.index() * self.n + b.index();
        (flat / 64, 1u64 << (flat % 64))
    }

    fn set_raw(&mut self, a: ServiceId, b: ServiceId) {
        let (w, m) = self.idx(a, b);
        self.bits[w] |= m;
    }

    fn get_raw(&self, a: ServiceId, b: ServiceId) -> bool {
        let (w, m) = self.idx(a, b);
        self.bits[w] & m != 0
    }

    /// Declares a conflict between two services.
    ///
    /// The relation is stored symmetrically over the *base* services, so
    /// declaring a conflict between `a` and `b` also makes `a⁻¹`/`b`,
    /// `a`/`b⁻¹` and `a⁻¹`/`b⁻¹` conflict — the perfect-commutativity closure
    /// of §3.2.
    pub fn declare_conflict(
        &mut self,
        catalog: &Catalog,
        a: ServiceId,
        b: ServiceId,
    ) -> Result<(), ModelError> {
        catalog.get(a)?;
        catalog.get(b)?;
        let (ba, bb) = (catalog.base(a), catalog.base(b));
        self.set_raw(ba, bb);
        self.set_raw(bb, ba);
        Ok(())
    }

    /// Declares that a service conflicts with itself (e.g. a write service:
    /// two writes of different values do not commute).
    pub fn declare_self_conflict(
        &mut self,
        catalog: &Catalog,
        a: ServiceId,
    ) -> Result<(), ModelError> {
        self.declare_conflict(catalog, a, a)
    }

    /// Whether two services conflict (do not commute), honouring perfect
    /// commutativity.
    #[inline]
    pub fn conflict(&self, catalog: &Catalog, a: ServiceId, b: ServiceId) -> bool {
        self.get_raw(catalog.base(a), catalog.base(b))
    }

    /// Whether two services commute (Definition 6).
    #[inline]
    pub fn commute(&self, catalog: &Catalog, a: ServiceId, b: ServiceId) -> bool {
        !self.conflict(catalog, a, b)
    }

    /// Number of declared conflicting base-service pairs (unordered).
    pub fn declared_pairs(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in i..self.n {
                if self.get_raw(ServiceId(i as u32), ServiceId(j as u32)) {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Convenience oracle bundling a catalog reference with its conflict matrix.
///
/// Most schedule-level algorithms need both; passing one object keeps
/// signatures small.
#[derive(Debug, Clone, Copy)]
pub struct ConflictOracle<'a> {
    /// The service catalog.
    pub catalog: &'a Catalog,
    /// The declared conflict relation.
    pub matrix: &'a ConflictMatrix,
}

impl<'a> ConflictOracle<'a> {
    /// Creates an oracle from a catalog and matrix.
    pub fn new(catalog: &'a Catalog, matrix: &'a ConflictMatrix) -> Self {
        Self { catalog, matrix }
    }

    /// Whether two services conflict.
    #[inline]
    pub fn conflict(&self, a: ServiceId, b: ServiceId) -> bool {
        self.matrix.conflict(self.catalog, a, b)
    }

    /// Whether two services commute.
    #[inline]
    pub fn commute(&self, a: ServiceId, b: ServiceId) -> bool {
        !self.conflict(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (
        Catalog,
        ConflictMatrix,
        ServiceId,
        ServiceId,
        ServiceId,
        ServiceId,
    ) {
        let mut cat = Catalog::new();
        let (a, a_inv) = cat.compensatable("a");
        let (b, b_inv) = cat.compensatable("b");
        let m = ConflictMatrix::new(&cat);
        (cat, m, a, a_inv, b, b_inv)
    }

    #[test]
    fn fresh_matrix_commutes_everything() {
        let (cat, m, a, _, b, _) = setup();
        assert!(m.commute(&cat, a, b));
        assert!(m.commute(&cat, a, a));
        assert_eq!(m.declared_pairs(), 0);
    }

    #[test]
    fn declared_conflicts_are_symmetric() {
        let (cat, mut m, a, _, b, _) = setup();
        m.declare_conflict(&cat, a, b).unwrap();
        assert!(m.conflict(&cat, a, b));
        assert!(m.conflict(&cat, b, a));
        assert!(!m.conflict(&cat, a, a));
    }

    #[test]
    fn perfect_commutativity_closure() {
        // §3.2: if a and b conflict then a^α and b^β conflict for all
        // α, β ∈ {-1, 1}.
        let (cat, mut m, a, a_inv, b, b_inv) = setup();
        m.declare_conflict(&cat, a, b).unwrap();
        for x in [a, a_inv] {
            for y in [b, b_inv] {
                assert!(m.conflict(&cat, x, y), "{x} vs {y} must conflict");
                assert!(m.conflict(&cat, y, x), "{y} vs {x} must conflict");
            }
        }
    }

    #[test]
    fn perfect_commutativity_also_preserves_commuting_pairs() {
        // And conversely: if a and b commute, so do all signed combinations.
        let (cat, mut m, a, a_inv, b, b_inv) = setup();
        // Declare an unrelated conflict to make sure it does not leak.
        m.declare_self_conflict(&cat, a).unwrap();
        for x in [a, a_inv] {
            for y in [b, b_inv] {
                assert!(m.commute(&cat, x, y));
            }
        }
    }

    #[test]
    fn declaring_via_compensation_ids_lands_on_base() {
        let (cat, mut m, a, a_inv, b, b_inv) = setup();
        m.declare_conflict(&cat, a_inv, b_inv).unwrap();
        assert!(m.conflict(&cat, a, b));
    }

    #[test]
    fn self_conflict() {
        let (cat, mut m, a, a_inv, b, _) = setup();
        m.declare_self_conflict(&cat, a).unwrap();
        assert!(m.conflict(&cat, a, a));
        assert!(m.conflict(&cat, a, a_inv));
        assert!(m.conflict(&cat, a_inv, a_inv));
        assert!(!m.conflict(&cat, a, b));
        assert_eq!(m.declared_pairs(), 1);
    }

    #[test]
    fn unknown_service_rejected() {
        let (cat, mut m, a, ..) = setup();
        assert!(m.declare_conflict(&cat, a, ServiceId(50)).is_err());
    }

    #[test]
    fn oracle_delegates() {
        let (cat, mut m, a, _, b, _) = setup();
        m.declare_conflict(&cat, a, b).unwrap();
        let o = ConflictOracle::new(&cat, &m);
        assert!(o.conflict(a, b));
        assert!(o.commute(a, a));
    }

    #[test]
    fn large_matrix_indexing() {
        let mut cat = Catalog::new();
        let svcs: Vec<ServiceId> = (0..40).map(|i| cat.pivot(format!("s{i}"))).collect();
        let mut m = ConflictMatrix::new(&cat);
        for w in svcs.chunks(2) {
            m.declare_conflict(&cat, w[0], w[1]).unwrap();
        }
        for w in svcs.chunks(2) {
            assert!(m.conflict(&cat, w[0], w[1]));
            assert!(m.conflict(&cat, w[1], w[0]));
        }
        assert!(!m.conflict(&cat, svcs[0], svcs[2]));
        assert_eq!(m.declared_pairs(), 20);
    }
}
