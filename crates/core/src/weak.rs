//! Strong and weak orders between conflicting activities (§3.6, after the
//! composite-systems theory [ABFS97, AFPS99]).
//!
//! The process model's `≪` is a *strong* (temporal) order: an activity is
//! invoked only after its predecessor terminated. A **weak** order is more
//! permissive: both activities may execute in parallel as long as the overall
//! effect equals the strong order — which a subsystem can guarantee with a
//! protocol supporting commit-order serializability \[BBG89\]. The scheduler
//! can therefore hand conflicting activity pairs to a subsystem as weak
//! constraints when (and only when) both run in the *same* subsystem and that
//! subsystem supports commit ordering; otherwise the pair stays strong.
//!
//! This module models the planning side: classifying constraints, computing
//! makespans under strong vs. weak execution (the parallelism gain measured
//! by experiment E15), and the §3.6 restart-cascade rule for retriable
//! activities.

use crate::ids::GlobalActivityId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Kind of an order constraint between two conflicting activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderKind {
    /// Sequential: the second activity starts after the first finished.
    Strong,
    /// Parallel with commit ordering: both execute concurrently, the
    /// subsystem commits them in constraint order.
    Weak,
}

/// An order constraint between two activities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderConstraint {
    /// The activity that must (appear to) run first.
    pub first: GlobalActivityId,
    /// The activity that must (appear to) run second.
    pub second: GlobalActivityId,
    /// Strong or weak.
    pub kind: OrderKind,
}

/// A task in the makespan model: one activity with a duration and a
/// subsystem assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// The activity.
    pub gid: GlobalActivityId,
    /// Execution duration in abstract time units.
    pub duration: u64,
    /// The subsystem executing the activity.
    pub subsystem: u32,
}

/// Whether a conflicting pair may be weakly ordered: both activities must run
/// in the same subsystem and that subsystem must support commit-order
/// serializability (§3.6). Otherwise the strong order is required.
pub fn classify(
    first: &Task,
    second: &Task,
    subsystem_supports_commit_order: impl Fn(u32) -> bool,
) -> OrderKind {
    if first.subsystem == second.subsystem && subsystem_supports_commit_order(first.subsystem) {
        OrderKind::Weak
    } else {
        OrderKind::Strong
    }
}

/// Commit-synchronization overhead charged to a weakly ordered successor: it
/// may run in parallel but cannot commit before its predecessor.
pub const COMMIT_SYNC: u64 = 1;

/// Computes per-activity completion times for a set of tasks under the given
/// order constraints, and the resulting makespan.
///
/// * strong edge: `start(second) ≥ finish(first)`
/// * weak edge: `finish(second) ≥ finish(first) + COMMIT_SYNC` (parallel
///   execution, commit-order enforced by the subsystem)
///
/// Constraint edges must be acyclic; returns `None` otherwise.
pub fn makespan(tasks: &[Task], constraints: &[OrderConstraint]) -> Option<MakespanPlan> {
    let index: BTreeMap<GlobalActivityId, usize> =
        tasks.iter().enumerate().map(|(i, t)| (t.gid, i)).collect();
    let n = tasks.len();
    let mut preds: Vec<Vec<(usize, OrderKind)>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for c in constraints {
        let (&i, &j) = (index.get(&c.first)?, index.get(&c.second)?);
        preds[j].push((i, c.kind));
        indeg[j] += 1;
    }
    // Kahn over the constraint DAG; compute finish times.
    let mut finish = vec![0u64; n];
    let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, ps) in preds.iter().enumerate() {
        for &(i, _) in ps {
            succs[i].push(j);
        }
    }
    while head < order.len() {
        let j = order[head];
        head += 1;
        let mut start = 0u64;
        let mut commit_floor = 0u64;
        for &(i, kind) in &preds[j] {
            match kind {
                OrderKind::Strong => start = start.max(finish[i]),
                OrderKind::Weak => commit_floor = commit_floor.max(finish[i] + COMMIT_SYNC),
            }
        }
        finish[j] = (start + tasks[j].duration).max(commit_floor);
        for &k in &succs[j] {
            indeg[k] -= 1;
            if indeg[k] == 0 {
                order.push(k);
            }
        }
    }
    if order.len() != n {
        return None; // cyclic constraints
    }
    let makespan = finish.iter().copied().max().unwrap_or(0);
    Some(MakespanPlan {
        finish_times: tasks
            .iter()
            .zip(finish.iter())
            .map(|(t, &f)| (t.gid, f))
            .collect(),
        makespan,
    })
}

/// Result of [`makespan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MakespanPlan {
    /// Completion time per activity.
    pub finish_times: BTreeMap<GlobalActivityId, u64>,
    /// Overall completion time.
    pub makespan: u64,
}

/// §3.6 restart cascade: given that the weakly ordered predecessor aborted
/// (transiently) and restarts at `restart_time`, the dependent activity must
/// be restarted inside the subsystem too — *without* raising a process-level
/// exception. Returns the new finish times of the pair.
pub fn restart_cascade(first: &Task, second: &Task, restart_time: u64) -> (u64, u64) {
    let first_finish = restart_time + first.duration;
    // The dependent restarts alongside and finishes no earlier than its own
    // duration from the restart, respecting the commit order.
    let second_finish = (restart_time + second.duration).max(first_finish + COMMIT_SYNC);
    (first_finish, second_finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ActivityId, ProcessId};

    fn gid(p: u32, a: u32) -> GlobalActivityId {
        GlobalActivityId::new(ProcessId(p), ActivityId(a))
    }

    fn task(p: u32, a: u32, duration: u64, subsystem: u32) -> Task {
        Task {
            gid: gid(p, a),
            duration,
            subsystem,
        }
    }

    #[test]
    fn strong_order_serializes_durations() {
        let tasks = [task(1, 0, 10, 0), task(2, 0, 10, 0)];
        let constraints = [OrderConstraint {
            first: gid(1, 0),
            second: gid(2, 0),
            kind: OrderKind::Strong,
        }];
        let plan = makespan(&tasks, &constraints).unwrap();
        assert_eq!(plan.makespan, 20);
    }

    #[test]
    fn weak_order_overlaps_execution() {
        let tasks = [task(1, 0, 10, 0), task(2, 0, 10, 0)];
        let constraints = [OrderConstraint {
            first: gid(1, 0),
            second: gid(2, 0),
            kind: OrderKind::Weak,
        }];
        let plan = makespan(&tasks, &constraints).unwrap();
        // Parallel execution; the successor only waits for commit order.
        assert_eq!(plan.makespan, 10 + COMMIT_SYNC);
    }

    #[test]
    fn weak_order_never_beats_unconstrained_but_beats_strong() {
        let tasks = [task(1, 0, 7, 0), task(2, 0, 5, 0)];
        let weak = makespan(
            &tasks,
            &[OrderConstraint {
                first: gid(1, 0),
                second: gid(2, 0),
                kind: OrderKind::Weak,
            }],
        )
        .unwrap();
        let strong = makespan(
            &tasks,
            &[OrderConstraint {
                first: gid(1, 0),
                second: gid(2, 0),
                kind: OrderKind::Strong,
            }],
        )
        .unwrap();
        let free = makespan(&tasks, &[]).unwrap();
        assert!(weak.makespan <= strong.makespan);
        assert!(free.makespan <= weak.makespan);
        assert_eq!(strong.makespan, 12);
        assert_eq!(weak.makespan, 8);
        assert_eq!(free.makespan, 7);
    }

    #[test]
    fn classify_requires_same_subsystem_with_commit_order() {
        let a = task(1, 0, 1, 0);
        let b = task(2, 0, 1, 0);
        let c = task(3, 0, 1, 1);
        assert_eq!(classify(&a, &b, |_| true), OrderKind::Weak);
        assert_eq!(classify(&a, &b, |_| false), OrderKind::Strong);
        assert_eq!(classify(&a, &c, |_| true), OrderKind::Strong);
    }

    #[test]
    fn chain_of_weak_orders_pipelines() {
        let tasks = [task(1, 0, 10, 0), task(2, 0, 10, 0), task(3, 0, 10, 0)];
        let constraints = [
            OrderConstraint {
                first: gid(1, 0),
                second: gid(2, 0),
                kind: OrderKind::Weak,
            },
            OrderConstraint {
                first: gid(2, 0),
                second: gid(3, 0),
                kind: OrderKind::Weak,
            },
        ];
        let plan = makespan(&tasks, &constraints).unwrap();
        assert_eq!(plan.makespan, 10 + 2 * COMMIT_SYNC);
    }

    #[test]
    fn cyclic_constraints_rejected() {
        let tasks = [task(1, 0, 1, 0), task(2, 0, 1, 0)];
        let constraints = [
            OrderConstraint {
                first: gid(1, 0),
                second: gid(2, 0),
                kind: OrderKind::Strong,
            },
            OrderConstraint {
                first: gid(2, 0),
                second: gid(1, 0),
                kind: OrderKind::Strong,
            },
        ];
        assert!(makespan(&tasks, &constraints).is_none());
    }

    #[test]
    fn unknown_activity_in_constraint_rejected() {
        let tasks = [task(1, 0, 1, 0)];
        let constraints = [OrderConstraint {
            first: gid(1, 0),
            second: gid(9, 9),
            kind: OrderKind::Weak,
        }];
        assert!(makespan(&tasks, &constraints).is_none());
    }

    #[test]
    fn restart_cascade_restarts_dependent() {
        // §3.6: the dependent transaction restarts with the retriable
        // predecessor, without a process-level exception.
        let a = task(1, 0, 5, 0);
        let b = task(2, 0, 3, 0);
        let (fa, fb) = restart_cascade(&a, &b, 100);
        assert_eq!(fa, 105);
        assert_eq!(fb, 106);
        assert!(fb > fa);
    }
}
