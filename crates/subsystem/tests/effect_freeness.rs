//! Property tests for the subsystem substrate: Definition 2's contract —
//! the pair ⟨a, a⁻¹⟩ must be effect-free — holds for arbitrary programs,
//! and transaction rollback restores the observable state.

use proptest::prelude::*;
use txproc_subsystem::agent::{Agent, CommitMode, InvokeOutcome};
use txproc_subsystem::kv::{Key, KvOp, Program};
use txproc_subsystem::subsystem::{Subsystem, SubsystemId};

fn op_strategy() -> impl Strategy<Value = KvOp> {
    let key = (0u64..6).prop_map(Key);
    prop_oneof![
        (key.clone(), -50i64..50).prop_map(|(k, d)| KvOp::Add(k, d)),
        (key.clone(), -50i64..50).prop_map(|(k, v)| KvOp::Set(k, v)),
        key.prop_map(KvOp::Read),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(op_strategy(), 1..6).prop_map(|ops| Program { ops })
}

/// Observable state: every key's readable value (absent keys read as 0).
fn observe(sub: &Subsystem) -> Vec<(Key, i64)> {
    (0..6)
        .map(|k| (Key(k), sub.peek(Key(k)).unwrap_or(0)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ⟨a, a⁻¹⟩ is effect-free (Definition 2): after invoking a program and
    /// compensating it, the observable state equals the initial one.
    #[test]
    fn invoke_then_compensate_is_effect_free(
        seed in program_strategy(),
        prog in program_strategy(),
    ) {
        let mut catalog = txproc_core::activity::Catalog::new();
        let (svc, _) = catalog.compensatable("w");
        let mut agent = Agent::new(Subsystem::new(SubsystemId(0), "t"));
        // Arbitrary pre-existing state.
        let out = agent.invoke(svc, &seed, CommitMode::Immediate, false).unwrap();
        prop_assert!(matches!(out, InvokeOutcome::Committed { .. }), "unexpected outcome");
        let before = observe(&agent.subsystem);
        let out = agent.invoke(svc, &prog, CommitMode::Immediate, false).unwrap();
        let InvokeOutcome::Committed { invocation, .. } = out else {
            panic!("unexpected outcome");
        };
        let out = agent.compensate(invocation).unwrap();
        prop_assert!(matches!(out, InvokeOutcome::Committed { .. }), "unexpected outcome");
        prop_assert_eq!(before, observe(&agent.subsystem));
    }

    /// Aborting a transaction restores the observable state exactly.
    #[test]
    fn abort_restores_state(seed in program_strategy(), prog in program_strategy()) {
        let mut sub = Subsystem::new(SubsystemId(0), "t");
        if let Ok((tx, _)) = sub.execute(&seed) {
            sub.commit(tx).unwrap();
        }
        let before = observe(&sub);
        match sub.execute(&prog) {
            Ok((tx, _)) => {
                sub.abort(tx).unwrap();
                prop_assert_eq!(before, observe(&sub));
            }
            Err(_) => {
                // Lock conflict with itself is impossible in a fresh tx;
                // execute() rolls back internally on failure anyway.
                prop_assert_eq!(before, observe(&sub));
            }
        }
    }

    /// Injected aborts leave no trace (atomicity of service invocations).
    #[test]
    fn injected_abort_is_atomic(seed in program_strategy(), prog in program_strategy()) {
        let mut catalog = txproc_core::activity::Catalog::new();
        let svc = catalog.pivot("p");
        let mut agent = Agent::new(Subsystem::new(SubsystemId(0), "t"));
        let _ = agent.invoke(svc, &seed, CommitMode::Immediate, false).unwrap();
        let before = observe(&agent.subsystem);
        let out = agent.invoke(svc, &prog, CommitMode::Immediate, true).unwrap();
        prop_assert_eq!(out, InvokeOutcome::Aborted);
        prop_assert_eq!(before, observe(&agent.subsystem));
    }

    /// Prepared-then-aborted transactions are atomic too (2PC abort path).
    #[test]
    fn prepared_abort_is_atomic(prog in program_strategy()) {
        let mut catalog = txproc_core::activity::Catalog::new();
        let svc = catalog.pivot("p");
        let mut agent = Agent::new(Subsystem::new(SubsystemId(0), "t"));
        let before = observe(&agent.subsystem);
        match agent.invoke(svc, &prog, CommitMode::Deferred, false).unwrap() {
            InvokeOutcome::Prepared { invocation, .. } => {
                agent.abort_prepared(invocation).unwrap();
                prop_assert_eq!(before, observe(&agent.subsystem));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    /// Commuting additive transactions produce the same sum in any commit
    /// order (the additive lock mode is sound).
    #[test]
    fn concurrent_adds_commute(d1 in -50i64..50, d2 in -50i64..50, first_commits_first in any::<bool>()) {
        let run = |order_flip: bool| -> i64 {
            let mut sub = Subsystem::new(SubsystemId(0), "t");
            let (t1, _) = sub.execute(&Program::add(Key(0), d1)).unwrap();
            let (t2, _) = sub.execute(&Program::add(Key(0), d2)).unwrap();
            if order_flip {
                sub.commit(t2).unwrap();
                sub.commit(t1).unwrap();
            } else {
                sub.commit(t1).unwrap();
                sub.commit(t2).unwrap();
            }
            sub.peek(Key(0)).unwrap_or(0)
        };
        prop_assert_eq!(run(first_commits_first), run(!first_commits_first));
    }

    /// One of two concurrent adds may also abort; the other's effect
    /// survives intact (operation-based undo).
    #[test]
    fn concurrent_add_abort_is_isolated(d1 in -50i64..50, d2 in -50i64..50) {
        let mut sub = Subsystem::new(SubsystemId(0), "t");
        let (t1, _) = sub.execute(&Program::add(Key(0), d1)).unwrap();
        let (t2, _) = sub.execute(&Program::add(Key(0), d2)).unwrap();
        sub.abort(t1).unwrap();
        sub.commit(t2).unwrap();
        prop_assert_eq!(sub.peek(Key(0)).unwrap_or(0), d2);
    }
}
