//! Errors of the simulated transactional subsystems.

use crate::kv::Key;
use crate::subsystem::TxId;
use std::fmt;

/// Subsystem-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubsystemError {
    /// The key is write-locked by another transaction; the caller should
    /// wait and retry.
    KeyLocked {
        /// The contended key.
        key: Key,
        /// The lock holder.
        holder: TxId,
    },
    /// Unknown or already-terminated transaction.
    UnknownTx(TxId),
    /// Operation requires a prepared transaction.
    NotPrepared(TxId),
    /// A transaction was asked to commit out of its declared commit order.
    CommitOrderViolation {
        /// The transaction that must commit first.
        must_commit_first: TxId,
        /// The transaction that attempted to commit.
        attempted: TxId,
    },
    /// The subsystem deliberately aborted the transaction (failure
    /// injection).
    InjectedAbort,
    /// The subsystem crashed mid-operation (crash injection).
    Crashed,
}

impl fmt::Display for SubsystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubsystemError::KeyLocked { key, holder } => {
                write!(f, "key {key} locked by {holder:?}")
            }
            SubsystemError::UnknownTx(t) => write!(f, "unknown transaction {t:?}"),
            SubsystemError::NotPrepared(t) => write!(f, "transaction {t:?} is not prepared"),
            SubsystemError::CommitOrderViolation {
                must_commit_first,
                attempted,
            } => write!(
                f,
                "transaction {attempted:?} must wait for {must_commit_first:?} (commit order)"
            ),
            SubsystemError::InjectedAbort => write!(f, "transaction aborted (injected failure)"),
            SubsystemError::Crashed => write!(f, "subsystem crashed"),
        }
    }
}

impl std::error::Error for SubsystemError {}
