//! # txproc-subsystem
//!
//! Simulated **transactional subsystems** for transactional process
//! management (§2.3 of the PODS'99 paper): the substrate the process
//! scheduler coordinates.
//!
//! The paper assumes subsystems that provide (i) atomic service invocations,
//! (ii) either compensation of committed services or two-phase-commit
//! participation, and (iii) — for the weak orders of §3.6 — commit-order
//! serializability. This crate builds exactly that substrate:
//!
//! * [`kv`] — the physical data model: keyed integer stores mutated by small
//!   operation programs whose read/write sets materialize conflicts,
//! * [`subsystem`] — the resource manager: local transactions with write
//!   locks and undo, a durable log, 2PC participation (prepare / commit /
//!   abort of in-doubt transactions), commit-order constraints, and crash
//!   simulation,
//! * [`deploy`] — the mapping from catalog services to subsystems and
//!   programs, with a soundness check of the declared conflict relation,
//! * [`agent`] — the transactional coordination agent wrapping a subsystem:
//!   atomic invocations, derived compensation programs (Definition 2),
//!   deferred commits, failure injection,
//! * [`tpc`] — the 2PC coordinator releasing deferred commits atomically
//!   (§3.5), with a decision log and in-doubt resolution for crash recovery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod deploy;
pub mod error;
pub mod kv;
pub mod subsystem;
pub mod tpc;

pub use agent::{Agent, CommitMode, InvocationId, InvokeOutcome};
pub use deploy::{Deployment, ServiceSite};
pub use error::SubsystemError;
pub use kv::{Key, KvOp, Program, Value};
pub use subsystem::{LogRecord, ReturnValues, Subsystem, SubsystemId, TxId, TxStatus};
pub use tpc::{Coordinator, Decision, Participant};
