//! Transactional coordination agents (§2.3).
//!
//! An agent wraps a subsystem and lifts its local transactions to the
//! service abstraction the process scheduler needs:
//!
//! * **atomic service invocations** — a service's program runs inside one
//!   local transaction; it either commits or leaves no trace,
//! * **compensation** — for compensatable services, the agent captures the
//!   forward invocation's before-images and synthesizes the compensating
//!   program so that `⟨a, a⁻¹⟩` is effect-free (Definition 2),
//! * **deferred commit** — non-compensatable services can execute under 2PC
//!   prepare, staying in doubt until the scheduler releases them (§3.5),
//! * **failure injection** — the caller decides per invocation whether the
//!   subsystem aborts it, modelling pivot failures and transient retriable
//!   aborts (Definitions 3 and 4).

use crate::error::SubsystemError;
use crate::kv::{Key, KvOp, Program};
use crate::subsystem::{ReturnValues, Subsystem, SubsystemId, TxId, TxStatus};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use txproc_core::ids::ServiceId;

/// Identifier of one service invocation at an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InvocationId(pub u64);

/// How the invocation's local transaction terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitMode {
    /// Commit at the subsystem immediately.
    Immediate,
    /// Prepare only; the scheduler releases the commit later via 2PC.
    Deferred,
}

/// Outcome of a service invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// The invocation committed.
    Committed {
        /// Handle for later compensation.
        invocation: InvocationId,
        /// The values the service read.
        returns: ReturnValues,
    },
    /// The invocation executed and is prepared (in doubt).
    Prepared {
        /// Handle for release/abort.
        invocation: InvocationId,
        /// The values the service read.
        returns: ReturnValues,
    },
    /// The invocation aborted atomically (no effects).
    Aborted,
    /// A key is locked by another (prepared) transaction; retry later.
    Busy {
        /// The contended key.
        key: Key,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct InvocationRecord {
    service: ServiceId,
    tx: TxId,
    /// Compensating program derived from before-images (reverse order).
    inverse: Program,
    compensated: bool,
}

/// A transactional coordination agent wrapping one subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Agent {
    /// The wrapped subsystem.
    pub subsystem: Subsystem,
    invocations: BTreeMap<InvocationId, InvocationRecord>,
    next_invocation: u64,
}

impl Agent {
    /// Wraps a subsystem.
    pub fn new(subsystem: Subsystem) -> Self {
        Self {
            subsystem,
            invocations: BTreeMap::new(),
            next_invocation: 0,
        }
    }

    /// The wrapped subsystem's id.
    pub fn id(&self) -> SubsystemId {
        self.subsystem.id
    }

    /// Invokes a service program.
    ///
    /// `inject_abort` simulates the subsystem aborting the transaction
    /// (pivot failure / transient retriable failure): the program executes
    /// and rolls back, leaving no trace.
    pub fn invoke(
        &mut self,
        service: ServiceId,
        program: &Program,
        mode: CommitMode,
        inject_abort: bool,
    ) -> Result<InvokeOutcome, SubsystemError> {
        let (tx, returns) = match self.subsystem.execute(program) {
            Ok(x) => x,
            Err(SubsystemError::KeyLocked { key, .. }) => return Ok(InvokeOutcome::Busy { key }),
            Err(e) => return Err(e),
        };
        if inject_abort {
            self.subsystem.abort(tx)?;
            return Ok(InvokeOutcome::Aborted);
        }
        // Derive the compensating program from the undo log, in reverse
        // write order, before the log is dropped on commit: `Set` restores
        // the before-image, `Add` applies the negated delta (so concurrent
        // commuting adds compensate correctly).
        let inverse = Program {
            ops: self
                .subsystem
                .tx_undo(tx)
                .expect("transaction exists")
                .iter()
                .rev()
                .map(|&u| match u {
                    crate::subsystem::UndoOp::Restore(key, before) => {
                        KvOp::Set(key, before.unwrap_or(0))
                    }
                    crate::subsystem::UndoOp::Sub(key, d) => KvOp::Add(key, -d),
                })
                .collect(),
        };
        let invocation = InvocationId(self.next_invocation);
        self.next_invocation += 1;
        self.invocations.insert(
            invocation,
            InvocationRecord {
                service,
                tx,
                inverse,
                compensated: false,
            },
        );
        match mode {
            CommitMode::Immediate => {
                self.subsystem.commit(tx)?;
                Ok(InvokeOutcome::Committed {
                    invocation,
                    returns,
                })
            }
            CommitMode::Deferred => {
                self.subsystem.prepare(tx)?;
                Ok(InvokeOutcome::Prepared {
                    invocation,
                    returns,
                })
            }
        }
    }

    /// Releases a deferred (prepared) invocation: 2PC phase 2 commit.
    pub fn release(&mut self, invocation: InvocationId) -> Result<(), SubsystemError> {
        let tx = self.tx_of(invocation)?;
        self.subsystem.commit_prepared(tx)
    }

    /// Aborts a deferred (prepared) invocation.
    pub fn abort_prepared(&mut self, invocation: InvocationId) -> Result<(), SubsystemError> {
        let tx = self.tx_of(invocation)?;
        self.subsystem.abort(tx)?;
        self.invocations.remove(&invocation);
        Ok(())
    }

    /// True when `invocation` is known and its transaction is still in the
    /// prepared state — i.e. `release` / `abort_prepared` would succeed.
    /// Stays false for released, aborted, or superseded invocations, which
    /// is what crash rebuild needs to avoid resurrecting stale 2PC votes.
    pub fn holds_prepared(&self, invocation: InvocationId) -> bool {
        self.invocations
            .get(&invocation)
            .is_some_and(|r| self.subsystem.tx_status(r.tx) == Some(TxStatus::Prepared))
    }

    fn tx_of(&self, invocation: InvocationId) -> Result<TxId, SubsystemError> {
        self.invocations
            .get(&invocation)
            .map(|r| r.tx)
            .ok_or(SubsystemError::UnknownTx(TxId(u64::MAX)))
    }

    /// Executes the compensating activity of a committed invocation
    /// (Definition 2). Runs as its own atomic transaction; compensating
    /// activities are retriable, so a `Busy` outcome should be retried by
    /// the caller.
    pub fn compensate(
        &mut self,
        invocation: InvocationId,
    ) -> Result<InvokeOutcome, SubsystemError> {
        let record = self
            .invocations
            .get(&invocation)
            .ok_or(SubsystemError::UnknownTx(TxId(u64::MAX)))?;
        if record.compensated {
            return Err(SubsystemError::UnknownTx(record.tx));
        }
        if self.subsystem.tx_status(record.tx) != Some(TxStatus::Committed) {
            return Err(SubsystemError::NotPrepared(record.tx));
        }
        let inverse = record.inverse.clone();
        let (tx, returns) = match self.subsystem.execute(&inverse) {
            Ok(x) => x,
            Err(SubsystemError::KeyLocked { key, .. }) => return Ok(InvokeOutcome::Busy { key }),
            Err(e) => return Err(e),
        };
        self.subsystem.commit(tx)?;
        self.invocations
            .get_mut(&invocation)
            .expect("present")
            .compensated = true;
        Ok(InvokeOutcome::Committed {
            invocation,
            returns,
        })
    }

    /// The service an invocation executed.
    pub fn service_of(&self, invocation: InvocationId) -> Option<ServiceId> {
        self.invocations.get(&invocation).map(|r| r.service)
    }

    /// Declares a commit-order constraint between two invocations (weak
    /// order support, §3.6).
    pub fn order_invocations(
        &mut self,
        first: InvocationId,
        second: InvocationId,
    ) -> Result<(), SubsystemError> {
        let (a, b) = (self.tx_of(first)?, self.tx_of(second)?);
        self.subsystem.order_commits(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_core::activity::Catalog;

    fn setup() -> (Agent, ServiceId, ServiceId) {
        let mut cat = Catalog::new();
        let (write, _) = cat.compensatable("write");
        let pivot = cat.pivot("pivot");
        let agent = Agent::new(Subsystem::new(SubsystemId(0), "s0"));
        (agent, write, pivot)
    }

    #[test]
    fn committed_invocation_applies_effects() {
        let (mut agent, write, _) = setup();
        let out = agent
            .invoke(
                write,
                &Program::set(Key(1), 7),
                CommitMode::Immediate,
                false,
            )
            .unwrap();
        assert!(matches!(out, InvokeOutcome::Committed { .. }));
        assert_eq!(agent.subsystem.peek(Key(1)), Some(7));
    }

    #[test]
    fn injected_abort_leaves_no_trace() {
        let (mut agent, write, _) = setup();
        let out = agent
            .invoke(write, &Program::set(Key(1), 7), CommitMode::Immediate, true)
            .unwrap();
        assert_eq!(out, InvokeOutcome::Aborted);
        assert_eq!(agent.subsystem.peek(Key(1)), None);
    }

    #[test]
    fn compensation_is_effect_free() {
        // Definition 2: ⟨a, a⁻¹⟩ leaves the state as if nothing ran.
        let (mut agent, write, _) = setup();
        // Pre-existing state.
        let seed = agent
            .invoke(
                write,
                &Program::set(Key(1), 10),
                CommitMode::Immediate,
                false,
            )
            .unwrap();
        let _ = seed;
        let out = agent
            .invoke(
                write,
                &Program::set(Key(1), 99).then(KvOp::Add(Key(2), 5)),
                CommitMode::Immediate,
                false,
            )
            .unwrap();
        let InvokeOutcome::Committed { invocation, .. } = out else {
            panic!("expected commit");
        };
        assert_eq!(agent.subsystem.peek(Key(1)), Some(99));
        assert_eq!(agent.subsystem.peek(Key(2)), Some(5));
        let comp = agent.compensate(invocation).unwrap();
        assert!(matches!(comp, InvokeOutcome::Committed { .. }));
        assert_eq!(agent.subsystem.peek(Key(1)), Some(10));
        assert_eq!(agent.subsystem.peek(Key(2)), Some(0));
    }

    #[test]
    fn double_compensation_rejected() {
        let (mut agent, write, _) = setup();
        let out = agent
            .invoke(
                write,
                &Program::set(Key(1), 1),
                CommitMode::Immediate,
                false,
            )
            .unwrap();
        let InvokeOutcome::Committed { invocation, .. } = out else {
            panic!()
        };
        agent.compensate(invocation).unwrap();
        assert!(agent.compensate(invocation).is_err());
    }

    #[test]
    fn deferred_invocation_prepares_and_releases() {
        let (mut agent, _, pivot) = setup();
        let out = agent
            .invoke(pivot, &Program::set(Key(1), 1), CommitMode::Deferred, false)
            .unwrap();
        let InvokeOutcome::Prepared { invocation, .. } = out else {
            panic!("expected prepared");
        };
        // In doubt: a conflicting invocation is Busy.
        let busy = agent
            .invoke(
                pivot,
                &Program::set(Key(1), 2),
                CommitMode::Immediate,
                false,
            )
            .unwrap();
        assert!(matches!(busy, InvokeOutcome::Busy { .. }));
        agent.release(invocation).unwrap();
        assert_eq!(agent.subsystem.peek(Key(1)), Some(1));
    }

    #[test]
    fn deferred_invocation_can_abort() {
        let (mut agent, _, pivot) = setup();
        let out = agent
            .invoke(pivot, &Program::set(Key(1), 1), CommitMode::Deferred, false)
            .unwrap();
        let InvokeOutcome::Prepared { invocation, .. } = out else {
            panic!()
        };
        agent.abort_prepared(invocation).unwrap();
        assert_eq!(agent.subsystem.peek(Key(1)), None);
    }

    #[test]
    fn compensation_of_uncommitted_invocation_rejected() {
        let (mut agent, _, pivot) = setup();
        let out = agent
            .invoke(pivot, &Program::set(Key(1), 1), CommitMode::Deferred, false)
            .unwrap();
        let InvokeOutcome::Prepared { invocation, .. } = out else {
            panic!()
        };
        assert!(agent.compensate(invocation).is_err());
    }

    #[test]
    fn service_of_round_trips() {
        let (mut agent, write, _) = setup();
        let out = agent
            .invoke(
                write,
                &Program::set(Key(1), 1),
                CommitMode::Immediate,
                false,
            )
            .unwrap();
        let InvokeOutcome::Committed { invocation, .. } = out else {
            panic!()
        };
        assert_eq!(agent.service_of(invocation), Some(write));
    }

    #[test]
    fn weak_order_between_invocations() {
        let (mut agent, write, _) = setup();
        // Two add-invocations on the same key commute physically but we
        // still constrain their commit order.
        let a = agent
            .invoke(write, &Program::add(Key(1), 1), CommitMode::Deferred, false)
            .unwrap();
        let b = agent
            .invoke(write, &Program::add(Key(2), 1), CommitMode::Deferred, false)
            .unwrap();
        let (
            InvokeOutcome::Prepared { invocation: ia, .. },
            InvokeOutcome::Prepared { invocation: ib, .. },
        ) = (a, b)
        else {
            panic!()
        };
        agent.order_invocations(ia, ib).unwrap();
        assert!(agent.release(ib).is_err());
        agent.release(ia).unwrap();
        agent.release(ib).unwrap();
    }
}
