//! Deployment: where each service of the catalog Â physically runs and what
//! it does there.
//!
//! A [`Deployment`] maps every (base) service to a subsystem and a
//! [`Program`]. Compensating services carry no program of their own — their
//! behaviour is derived from the forward invocation's before-images by the
//! agent (see [`crate::agent`]), which matches the paper's Definition 2: the
//! pair `⟨a, a⁻¹⟩` must be effect-free.

use crate::kv::Program;
use crate::subsystem::SubsystemId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use txproc_core::activity::Catalog;
use txproc_core::conflict::ConflictMatrix;
use txproc_core::ids::ServiceId;

/// Physical placement and behaviour of one service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSite {
    /// The subsystem executing the service.
    pub subsystem: SubsystemId,
    /// The physical program the service runs.
    pub program: Program,
    /// Abstract execution duration (time units) for latency models.
    pub duration: u64,
}

/// Maps services to their physical sites.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Deployment {
    sites: BTreeMap<ServiceId, ServiceSite>,
}

impl Deployment {
    /// Creates an empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Places a service.
    pub fn place(
        &mut self,
        service: ServiceId,
        subsystem: SubsystemId,
        program: Program,
    ) -> &mut Self {
        self.sites.insert(
            service,
            ServiceSite {
                subsystem,
                program,
                duration: 1,
            },
        );
        self
    }

    /// Places a service with an explicit duration.
    pub fn place_with_duration(
        &mut self,
        service: ServiceId,
        subsystem: SubsystemId,
        program: Program,
        duration: u64,
    ) -> &mut Self {
        self.sites.insert(
            service,
            ServiceSite {
                subsystem,
                program,
                duration,
            },
        );
        self
    }

    /// Site of a service.
    pub fn site(&self, service: ServiceId) -> Option<&ServiceSite> {
        self.sites.get(&service)
    }

    /// All placed services.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &ServiceSite)> {
        self.sites.iter().map(|(&s, site)| (s, site))
    }

    /// Distinct subsystems used by the deployment.
    pub fn subsystems(&self) -> Vec<SubsystemId> {
        let mut ids: Vec<SubsystemId> = self.sites.values().map(|s| s.subsystem).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Checks that the declared conflict relation is *sound* with respect to
    /// the physical programs: any two services whose programs physically
    /// conflict must be declared conflicting in the matrix (the converse —
    /// declared conflicts without physical contact — is allowed: declared
    /// commutativity information may be conservative).
    ///
    /// Returns the undeclared physically-conflicting pairs.
    pub fn validate_conflicts(
        &self,
        catalog: &Catalog,
        matrix: &ConflictMatrix,
    ) -> Vec<(ServiceId, ServiceId)> {
        let mut missing = Vec::new();
        let list: Vec<(ServiceId, &ServiceSite)> = self.services().collect();
        for (i, &(sa, site_a)) in list.iter().enumerate() {
            for &(sb, site_b) in &list[i..] {
                if site_a.program.conflicts_with(&site_b.program)
                    && !matrix.conflict(catalog, sa, sb)
                {
                    missing.push((sa, sb));
                }
            }
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::Key;

    #[test]
    fn place_and_lookup() {
        let mut cat = Catalog::new();
        let a = cat.pivot("a");
        let mut d = Deployment::new();
        d.place(a, SubsystemId(3), Program::set(Key(1), 1));
        let site = d.site(a).unwrap();
        assert_eq!(site.subsystem, SubsystemId(3));
        assert_eq!(site.duration, 1);
        assert_eq!(d.subsystems(), vec![SubsystemId(3)]);
    }

    #[test]
    fn validate_conflicts_finds_undeclared_pairs() {
        let mut cat = Catalog::new();
        let a = cat.pivot("a");
        let b = cat.pivot("b");
        let matrix = ConflictMatrix::new(&cat); // nothing declared
        let mut d = Deployment::new();
        d.place(a, SubsystemId(0), Program::set(Key(1), 1));
        d.place(b, SubsystemId(0), Program::read(Key(1)));
        let missing = d.validate_conflicts(&cat, &matrix);
        // Set self-conflicts physically, and conflicts with the read.
        assert_eq!(missing, vec![(a, a), (a, b)]);
    }

    #[test]
    fn validate_conflicts_accepts_declared_superset() {
        let mut cat = Catalog::new();
        let a = cat.pivot("a");
        let b = cat.pivot("b");
        let mut matrix = ConflictMatrix::new(&cat);
        matrix.declare_conflict(&cat, a, b).unwrap();
        matrix.declare_self_conflict(&cat, a).unwrap();
        matrix.declare_self_conflict(&cat, b).unwrap();
        let mut d = Deployment::new();
        // Physically disjoint — declared conflicts are just conservative.
        d.place(a, SubsystemId(0), Program::set(Key(1), 1));
        d.place(b, SubsystemId(0), Program::set(Key(2), 1));
        assert!(d.validate_conflicts(&cat, &matrix).is_empty());
    }

    #[test]
    fn self_conflicting_program_detected() {
        let mut cat = Catalog::new();
        let a = cat.pivot("a");
        let matrix = ConflictMatrix::new(&cat);
        let mut d = Deployment::new();
        d.place(a, SubsystemId(0), Program::set(Key(1), 1));
        // Set conflicts with itself.
        let missing = d.validate_conflicts(&cat, &matrix);
        assert_eq!(missing, vec![(a, a)]);
    }
}
