//! The physical data model of a simulated subsystem: a keyed store of
//! integer values, mutated by small operation programs.
//!
//! Services in the paper are semantically rich operations; what makes two
//! services conflict is that their return values depend on execution order.
//! We materialize that with read/add/set operations over keys: two programs
//! conflict physically when one writes a key the other reads or writes
//! non-commutatively.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A storage key within one subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(pub u64);

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A stored value.
pub type Value = i64;

/// One primitive operation of a service program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvOp {
    /// Read a key; the value becomes part of the service's return value.
    Read(Key),
    /// Add a delta to a key (commutes with other adds on the same key).
    Add(Key, Value),
    /// Overwrite a key (does not commute with anything on the same key).
    Set(Key, Value),
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(&self) -> Key {
        match self {
            KvOp::Read(k) | KvOp::Add(k, _) | KvOp::Set(k, _) => *k,
        }
    }

    /// Whether the operation writes.
    pub fn is_write(&self) -> bool {
        !matches!(self, KvOp::Read(_))
    }
}

/// The physical program run by one service invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Operations in order.
    pub ops: Vec<KvOp>,
}

impl Program {
    /// An empty (pure) program.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single-read program.
    pub fn read(key: Key) -> Self {
        Self {
            ops: vec![KvOp::Read(key)],
        }
    }

    /// A single-add program.
    pub fn add(key: Key, delta: Value) -> Self {
        Self {
            ops: vec![KvOp::Add(key, delta)],
        }
    }

    /// A single-set program.
    pub fn set(key: Key, value: Value) -> Self {
        Self {
            ops: vec![KvOp::Set(key, value)],
        }
    }

    /// Appends an operation.
    pub fn then(mut self, op: KvOp) -> Self {
        self.ops.push(op);
        self
    }

    /// All keys written by the program.
    pub fn write_set(&self) -> Vec<Key> {
        self.ops
            .iter()
            .filter(|o| o.is_write())
            .map(KvOp::key)
            .collect()
    }

    /// All keys read by the program.
    pub fn read_set(&self) -> Vec<Key> {
        self.ops
            .iter()
            .filter(|o| !o.is_write())
            .map(KvOp::key)
            .collect()
    }

    /// Whether two programs physically conflict: one writes a key the other
    /// touches, with commuting add/add pairs excluded.
    pub fn conflicts_with(&self, other: &Program) -> bool {
        for a in &self.ops {
            for b in &other.ops {
                if a.key() != b.key() {
                    continue;
                }
                match (a, b) {
                    (KvOp::Read(_), KvOp::Read(_)) => {}
                    (KvOp::Add(_, _), KvOp::Add(_, _)) => {}
                    _ if a.is_write() || b.is_write() => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_sets() {
        let p = Program::read(Key(1))
            .then(KvOp::Add(Key(2), 5))
            .then(KvOp::Set(Key(3), 7));
        assert_eq!(p.read_set(), vec![Key(1)]);
        assert_eq!(p.write_set(), vec![Key(2), Key(3)]);
    }

    #[test]
    fn adds_commute_on_same_key() {
        let a = Program::add(Key(1), 2);
        let b = Program::add(Key(1), 3);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn set_conflicts_with_everything_on_key() {
        let s = Program::set(Key(1), 9);
        assert!(s.conflicts_with(&Program::read(Key(1))));
        assert!(s.conflicts_with(&Program::add(Key(1), 1)));
        assert!(s.conflicts_with(&Program::set(Key(1), 2)));
        assert!(!s.conflicts_with(&Program::set(Key(2), 2)));
    }

    #[test]
    fn reads_never_conflict() {
        let a = Program::read(Key(1));
        let b = Program::read(Key(1));
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn write_read_conflicts() {
        let w = Program::add(Key(1), 1);
        let r = Program::read(Key(1));
        assert!(w.conflicts_with(&r));
        assert!(r.conflicts_with(&w));
    }

    #[test]
    fn empty_program_conflicts_nothing() {
        assert!(!Program::empty().conflicts_with(&Program::set(Key(1), 1)));
    }
}
