//! Two-phase commit coordinator for the atomic release of deferred commits
//! (§3.5): "the commitment of all non-compensatable activities of `P_j` has
//! to be performed atomically by exploiting a two phase commit protocol in
//! order to ensure that either all activities commit or none of them."
//!
//! Participants are service invocations already *prepared* at their agents
//! (phase 1 happened at execution time under
//! [`CommitMode::Deferred`](crate::agent::CommitMode)). The coordinator
//! durably logs its decision, then drives phase 2. A crash between decision
//! and completion leaves in-doubt participants that [`resolve_in_doubt`]
//! finishes from the decision log — the crash-recovery experiment (E16)
//! exercises exactly this window.

use crate::agent::{Agent, InvocationId};
use crate::error::SubsystemError;
use crate::subsystem::SubsystemId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A participant: one prepared invocation at one agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Participant {
    /// The agent/subsystem holding the prepared transaction.
    pub subsystem: SubsystemId,
    /// The prepared invocation.
    pub invocation: InvocationId,
}

/// Coordinator decision for one atomic commit group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Commit all participants.
    Commit,
    /// Abort all participants.
    Abort,
}

/// One durable decision-log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Group id.
    pub group: u64,
    /// Participants of the group.
    pub participants: Vec<Participant>,
    /// The decision.
    pub decision: Decision,
    /// Whether phase 2 finished for every participant.
    pub completed: bool,
}

/// The 2PC coordinator with a durable decision log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Coordinator {
    log: Vec<DecisionRecord>,
    next_group: u64,
}

impl Coordinator {
    /// Creates a coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a coordinator from a replayed decision log (WAL recovery).
    /// The group counter resumes past the highest logged group id.
    pub fn from_log(log: Vec<DecisionRecord>) -> Self {
        let next_group = log.iter().map(|r| r.group + 1).max().unwrap_or(0);
        Self { log, next_group }
    }

    /// The decision log.
    pub fn log(&self) -> &[DecisionRecord] {
        &self.log
    }

    /// The group id the next logged decision will receive. Lets a
    /// write-ahead journal record the decision *before* calling
    /// [`Coordinator::commit_group`].
    pub fn next_group_id(&self) -> u64 {
        self.next_group
    }

    /// Restores an externally journaled decision without running phase 2
    /// (WAL replay of a `Decision` record). The group stays in-doubt until
    /// [`Coordinator::complete_group`] or [`Coordinator::resolve_in_doubt`]
    /// finishes it.
    pub fn restore_decision(
        &mut self,
        group: u64,
        participants: Vec<Participant>,
        decision: Decision,
    ) {
        self.log.push(DecisionRecord {
            group,
            participants,
            decision,
            completed: false,
        });
        self.next_group = self.next_group.max(group + 1);
    }

    /// Runs phase 2 of an already-logged group (WAL replay of a
    /// `DecisionApplied` record). Idempotence caveat: the caller must know
    /// phase 2 has not run yet — the decision log's `completed` flag is the
    /// guard [`Coordinator::resolve_in_doubt`] uses.
    pub fn complete_group(
        &mut self,
        agents: &mut BTreeMap<SubsystemId, Agent>,
        group: u64,
    ) -> Result<(), SubsystemError> {
        self.run_phase2(agents, group)
    }

    /// Atomically commits a group of prepared invocations across agents.
    ///
    /// `crash_after_decision` simulates a coordinator crash after the
    /// decision was logged but before phase 2 ran: the function returns
    /// without touching the agents; [`resolve_in_doubt`] completes the group
    /// later.
    pub fn commit_group(
        &mut self,
        agents: &mut BTreeMap<SubsystemId, Agent>,
        participants: Vec<Participant>,
        crash_after_decision: bool,
    ) -> Result<u64, SubsystemError> {
        let group = self.next_group;
        self.next_group += 1;
        self.log.push(DecisionRecord {
            group,
            participants: participants.clone(),
            decision: Decision::Commit,
            completed: false,
        });
        if crash_after_decision {
            return Ok(group);
        }
        self.run_phase2(agents, group)?;
        Ok(group)
    }

    /// Atomically aborts a group of prepared invocations.
    pub fn abort_group(
        &mut self,
        agents: &mut BTreeMap<SubsystemId, Agent>,
        participants: Vec<Participant>,
    ) -> Result<u64, SubsystemError> {
        let group = self.next_group;
        self.next_group += 1;
        self.log.push(DecisionRecord {
            group,
            participants,
            decision: Decision::Abort,
            completed: false,
        });
        self.run_phase2(agents, group)?;
        Ok(group)
    }

    fn run_phase2(
        &mut self,
        agents: &mut BTreeMap<SubsystemId, Agent>,
        group: u64,
    ) -> Result<(), SubsystemError> {
        let record = self
            .log
            .iter()
            .position(|r| r.group == group)
            .expect("logged group");
        let (participants, decision) = {
            let r = &self.log[record];
            (r.participants.clone(), r.decision)
        };
        for p in &participants {
            let agent = agents
                .get_mut(&p.subsystem)
                .ok_or(SubsystemError::UnknownTx(crate::subsystem::TxId(u64::MAX)))?;
            match decision {
                Decision::Commit => agent.release(p.invocation)?,
                Decision::Abort => agent.abort_prepared(p.invocation)?,
            }
        }
        self.log[record].completed = true;
        Ok(())
    }

    /// Completes every logged-but-unfinished group (crash recovery).
    /// Returns the group ids that were resolved.
    pub fn resolve_in_doubt(
        &mut self,
        agents: &mut BTreeMap<SubsystemId, Agent>,
    ) -> Result<Vec<u64>, SubsystemError> {
        let pending: Vec<u64> = self
            .log
            .iter()
            .filter(|r| !r.completed)
            .map(|r| r.group)
            .collect();
        for &g in &pending {
            self.run_phase2(agents, g)?;
        }
        Ok(pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{CommitMode, InvokeOutcome};
    use crate::kv::{Key, Program};
    use crate::subsystem::Subsystem;
    use txproc_core::activity::Catalog;
    use txproc_core::ids::ServiceId;

    fn setup() -> (BTreeMap<SubsystemId, Agent>, ServiceId) {
        let mut cat = Catalog::new();
        let pivot = cat.pivot("p");
        let mut agents = BTreeMap::new();
        agents.insert(
            SubsystemId(0),
            Agent::new(Subsystem::new(SubsystemId(0), "s0")),
        );
        agents.insert(
            SubsystemId(1),
            Agent::new(Subsystem::new(SubsystemId(1), "s1")),
        );
        (agents, pivot)
    }

    fn prepare_on(
        agents: &mut BTreeMap<SubsystemId, Agent>,
        sid: SubsystemId,
        svc: ServiceId,
        key: Key,
    ) -> Participant {
        let out = agents
            .get_mut(&sid)
            .unwrap()
            .invoke(svc, &Program::set(key, 1), CommitMode::Deferred, false)
            .unwrap();
        let InvokeOutcome::Prepared { invocation, .. } = out else {
            panic!("expected prepared");
        };
        Participant {
            subsystem: sid,
            invocation,
        }
    }

    #[test]
    fn atomic_commit_across_two_subsystems() {
        let (mut agents, pivot) = setup();
        let p0 = prepare_on(&mut agents, SubsystemId(0), pivot, Key(1));
        let p1 = prepare_on(&mut agents, SubsystemId(1), pivot, Key(2));
        let mut coord = Coordinator::new();
        coord
            .commit_group(&mut agents, vec![p0, p1], false)
            .unwrap();
        assert_eq!(agents[&SubsystemId(0)].subsystem.peek(Key(1)), Some(1));
        assert_eq!(agents[&SubsystemId(1)].subsystem.peek(Key(2)), Some(1));
        assert!(coord.log()[0].completed);
    }

    #[test]
    fn atomic_abort_leaves_nothing() {
        let (mut agents, pivot) = setup();
        let p0 = prepare_on(&mut agents, SubsystemId(0), pivot, Key(1));
        let p1 = prepare_on(&mut agents, SubsystemId(1), pivot, Key(2));
        let mut coord = Coordinator::new();
        coord.abort_group(&mut agents, vec![p0, p1]).unwrap();
        assert_eq!(agents[&SubsystemId(0)].subsystem.peek(Key(1)), None);
        assert_eq!(agents[&SubsystemId(1)].subsystem.peek(Key(2)), None);
    }

    #[test]
    fn crash_between_decision_and_phase2_recovers() {
        let (mut agents, pivot) = setup();
        let p0 = prepare_on(&mut agents, SubsystemId(0), pivot, Key(1));
        let p1 = prepare_on(&mut agents, SubsystemId(1), pivot, Key(2));
        let mut coord = Coordinator::new();
        coord.commit_group(&mut agents, vec![p0, p1], true).unwrap();
        // Phase 2 has not run: the participants stay prepared (in doubt),
        // their locks held.
        assert!(!coord.log()[0].completed);
        // Recovery finishes the group from the decision log.
        let resolved = coord.resolve_in_doubt(&mut agents).unwrap();
        assert_eq!(resolved.len(), 1);
        assert_eq!(agents[&SubsystemId(0)].subsystem.peek(Key(1)), Some(1));
        assert_eq!(agents[&SubsystemId(1)].subsystem.peek(Key(2)), Some(1));
    }

    #[test]
    fn resolve_with_nothing_pending_is_noop() {
        let (mut agents, _) = setup();
        let mut coord = Coordinator::new();
        assert!(coord.resolve_in_doubt(&mut agents).unwrap().is_empty());
    }
}
