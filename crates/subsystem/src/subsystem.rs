//! A simulated transactional subsystem (§2.3): a resource manager with
//! atomic local transactions, write locks, a durable log, two-phase commit
//! participation (prepare / commit / abort of in-doubt transactions), and
//! optional commit-order serializability for weak orders (§3.6, \[BBG89\]).

use crate::error::SubsystemError;
use crate::kv::{Key, KvOp, Program, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubsystemId(pub u32);

/// Identifier of a local transaction within one subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId(pub u64);

/// Lifecycle of a local transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TxStatus {
    /// Running.
    #[default]
    Active,
    /// Voted yes in 2PC; in doubt until commit/abort.
    Prepared,
    /// Durably committed.
    Committed,
    /// Rolled back.
    Aborted,
}

/// Durable log records (used by the crash-recovery simulation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Transaction began.
    Begin(TxId),
    /// A write with its before-image.
    Write {
        /// Writing transaction.
        tx: TxId,
        /// Written key.
        key: Key,
        /// Value before the write (None: key absent).
        before: Option<Value>,
        /// Value after the write.
        after: Value,
    },
    /// Transaction prepared (2PC vote yes).
    Prepare(TxId),
    /// Transaction committed.
    Commit(TxId),
    /// Transaction aborted.
    Abort(TxId),
}

/// One undo-log entry. `Add` operations use operation-based undo so that
/// concurrent additive transactions (which commute) roll back correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UndoOp {
    /// Restore a before-image (undo of `Set`).
    Restore(Key, Option<Value>),
    /// Subtract a delta (undo of `Add`).
    Sub(Key, Value),
}

/// Lock state of one key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum LockState {
    /// Held exclusively (a `Set` writer).
    Exclusive(TxId),
    /// Held additively by commuting `Add` writers.
    Additive(Vec<TxId>),
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TxState {
    /// Undo log in write order.
    undo: Vec<UndoOp>,
    /// Keys locked by this transaction.
    locks: Vec<Key>,
    /// Values read (returned to the caller).
    reads: Vec<(Key, Value)>,
    status: TxStatus,
}

impl TxState {
    fn new() -> Self {
        Self {
            undo: Vec::new(),
            locks: Vec::new(),
            reads: Vec::new(),
            status: TxStatus::Active,
        }
    }
}

/// Return value of a service invocation: the values read, in program order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReturnValues(pub Vec<(Key, Value)>);

/// A simulated transactional subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subsystem {
    /// Subsystem identifier.
    pub id: SubsystemId,
    /// Human-readable name (e.g. `"PDM"`).
    pub name: String,
    store: BTreeMap<Key, Value>,
    locks: BTreeMap<Key, LockState>,
    txs: BTreeMap<TxId, TxState>,
    /// Commit-order constraints `(first, second)` (weak order, §3.6).
    commit_order: Vec<(TxId, TxId)>,
    log: Vec<LogRecord>,
    /// Whether the subsystem supports commit-order serializability.
    pub supports_commit_order: bool,
    next_tx: u64,
    crashed: bool,
}

impl Subsystem {
    /// Creates a subsystem.
    pub fn new(id: SubsystemId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
            store: BTreeMap::new(),
            locks: BTreeMap::new(),
            txs: BTreeMap::new(),
            commit_order: Vec::new(),
            log: Vec::new(),
            supports_commit_order: true,
            next_tx: 0,
            crashed: false,
        }
    }

    /// The undo log of a transaction, in write order. Used by agents to
    /// derive compensation programs.
    pub fn tx_undo(&self, tx: TxId) -> Option<&[UndoOp]> {
        self.txs.get(&tx).map(|t| t.undo.as_slice())
    }

    /// Reads a committed value (outside any transaction).
    pub fn peek(&self, key: Key) -> Option<Value> {
        self.store.get(&key).copied()
    }

    /// Raw store snapshot (testing / metrics).
    pub fn snapshot(&self) -> &BTreeMap<Key, Value> {
        &self.store
    }

    /// The durable log.
    pub fn log(&self) -> &[LogRecord] {
        &self.log
    }

    /// Debug dump of currently held locks (diagnostics only).
    pub fn debug_locks(&self) -> String {
        format!("{:?}", self.locks)
    }

    /// Begins a local transaction.
    pub fn begin(&mut self) -> Result<TxId, SubsystemError> {
        self.check_up()?;
        let tx = TxId(self.next_tx);
        self.next_tx += 1;
        self.txs.insert(tx, TxState::new());
        self.log.push(LogRecord::Begin(tx));
        Ok(tx)
    }

    fn check_up(&self) -> Result<(), SubsystemError> {
        if self.crashed {
            Err(SubsystemError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Acquires a lock on `key` for `tx`. `Add` writers share an additive
    /// lock (their operations commute); `Set` writers need exclusivity.
    fn acquire_lock(&mut self, tx: TxId, key: Key, additive: bool) -> Result<(), SubsystemError> {
        let newly = match self.locks.get_mut(&key) {
            None => {
                self.locks.insert(
                    key,
                    if additive {
                        LockState::Additive(vec![tx])
                    } else {
                        LockState::Exclusive(tx)
                    },
                );
                true
            }
            Some(LockState::Exclusive(holder)) => {
                if *holder != tx {
                    return Err(SubsystemError::KeyLocked {
                        key,
                        holder: *holder,
                    });
                }
                false
            }
            Some(LockState::Additive(holders)) => {
                if additive || (holders.len() == 1 && holders[0] == tx) {
                    if additive {
                        if holders.contains(&tx) {
                            false
                        } else {
                            holders.push(tx);
                            true
                        }
                    } else {
                        // Upgrade the sole additive holder to exclusive.
                        *self.locks.get_mut(&key).expect("present") = LockState::Exclusive(tx);
                        false
                    }
                } else {
                    return Err(SubsystemError::KeyLocked {
                        key,
                        holder: holders[0],
                    });
                }
            }
        };
        if newly {
            self.txs.get_mut(&tx).expect("active").locks.push(key);
        }
        Ok(())
    }

    fn release_locks(&mut self, tx: TxId, locks: Vec<Key>) {
        for key in locks {
            let remove = match self.locks.get_mut(&key) {
                Some(LockState::Exclusive(holder)) => *holder == tx,
                Some(LockState::Additive(holders)) => {
                    holders.retain(|&h| h != tx);
                    holders.is_empty()
                }
                None => false,
            };
            if remove {
                self.locks.remove(&key);
            }
        }
    }

    fn active_tx(&mut self, tx: TxId) -> Result<&mut TxState, SubsystemError> {
        match self.txs.get(&tx).map(|t| t.status) {
            Some(TxStatus::Active) => Ok(self.txs.get_mut(&tx).expect("present")),
            _ => Err(SubsystemError::UnknownTx(tx)),
        }
    }

    /// Executes one program operation inside a transaction.
    pub fn apply(&mut self, tx: TxId, op: KvOp) -> Result<(), SubsystemError> {
        self.check_up()?;
        self.active_tx(tx)?;
        let key = op.key();
        if op.is_write() {
            self.acquire_lock(tx, key, matches!(op, KvOp::Add(..)))?;
            let before = self.store.get(&key).copied();
            let (after, undo) = match op {
                KvOp::Add(_, d) => (before.unwrap_or(0) + d, UndoOp::Sub(key, d)),
                KvOp::Set(_, v) => (v, UndoOp::Restore(key, before)),
                KvOp::Read(_) => unreachable!("writes only"),
            };
            self.store.insert(key, after);
            let st = self.txs.get_mut(&tx).expect("active");
            st.undo.push(undo);
            self.log.push(LogRecord::Write {
                tx,
                key,
                before,
                after,
            });
        } else {
            // Reads see the current (possibly own-uncommitted) state; the
            // scheduler above prevents dirty cross-process reads.
            let v = self.store.get(&key).copied().unwrap_or(0);
            self.txs.get_mut(&tx).expect("active").reads.push((key, v));
        }
        Ok(())
    }

    /// Runs a full program inside a fresh transaction *without* committing;
    /// returns the transaction and its read values. On a lock conflict the
    /// transaction rolls back and the error is returned.
    pub fn execute(&mut self, program: &Program) -> Result<(TxId, ReturnValues), SubsystemError> {
        let tx = self.begin()?;
        for &op in &program.ops {
            if let Err(e) = self.apply(tx, op) {
                self.abort(tx).ok();
                return Err(e);
            }
        }
        let reads = ReturnValues(self.txs[&tx].reads.clone());
        Ok((tx, reads))
    }

    /// Declares a commit-order constraint: `first` must commit before
    /// `second` (weak order, §3.6).
    pub fn order_commits(&mut self, first: TxId, second: TxId) -> Result<(), SubsystemError> {
        self.check_up()?;
        if !self.supports_commit_order {
            return Err(SubsystemError::NotPrepared(second));
        }
        self.commit_order.push((first, second));
        Ok(())
    }

    fn commit_blocked_by(&self, tx: TxId) -> Option<TxId> {
        self.commit_order.iter().find_map(|&(first, second)| {
            if second == tx {
                match self.txs.get(&first).map(|t| t.status) {
                    Some(TxStatus::Active) | Some(TxStatus::Prepared) => Some(first),
                    _ => None,
                }
            } else {
                None
            }
        })
    }

    /// Commits an active transaction (one-phase).
    pub fn commit(&mut self, tx: TxId) -> Result<(), SubsystemError> {
        self.check_up()?;
        self.active_tx(tx)?;
        if let Some(first) = self.commit_blocked_by(tx) {
            return Err(SubsystemError::CommitOrderViolation {
                must_commit_first: first,
                attempted: tx,
            });
        }
        self.finish_commit(tx);
        Ok(())
    }

    fn finish_commit(&mut self, tx: TxId) {
        let st = self.txs.get_mut(&tx).expect("present");
        st.status = TxStatus::Committed;
        let locks = std::mem::take(&mut st.locks);
        self.release_locks(tx, locks);
        self.log.push(LogRecord::Commit(tx));
    }

    /// Rolls back an active or prepared transaction.
    pub fn abort(&mut self, tx: TxId) -> Result<(), SubsystemError> {
        self.check_up()?;
        let status = self
            .txs
            .get(&tx)
            .map(|t| t.status)
            .ok_or(SubsystemError::UnknownTx(tx))?;
        if !matches!(status, TxStatus::Active | TxStatus::Prepared) {
            return Err(SubsystemError::UnknownTx(tx));
        }
        let st = self.txs.get_mut(&tx).expect("present");
        st.status = TxStatus::Aborted;
        let undo = std::mem::take(&mut st.undo);
        let locks = std::mem::take(&mut st.locks);
        // Undo in reverse write order.
        for op in undo.into_iter().rev() {
            match op {
                UndoOp::Restore(key, Some(v)) => {
                    self.store.insert(key, v);
                }
                UndoOp::Restore(key, None) => {
                    self.store.remove(&key);
                }
                UndoOp::Sub(key, d) => {
                    let v = self.store.get(&key).copied().unwrap_or(0) - d;
                    self.store.insert(key, v);
                }
            }
        }
        self.release_locks(tx, locks);
        self.log.push(LogRecord::Abort(tx));
        Ok(())
    }

    /// 2PC phase 1: prepares an active transaction (vote yes). The
    /// transaction keeps its locks and stays in doubt.
    pub fn prepare(&mut self, tx: TxId) -> Result<(), SubsystemError> {
        self.check_up()?;
        self.active_tx(tx)?;
        self.txs.get_mut(&tx).expect("present").status = TxStatus::Prepared;
        self.log.push(LogRecord::Prepare(tx));
        Ok(())
    }

    /// 2PC phase 2: commits a prepared transaction.
    pub fn commit_prepared(&mut self, tx: TxId) -> Result<(), SubsystemError> {
        self.check_up()?;
        match self.txs.get(&tx).map(|t| t.status) {
            Some(TxStatus::Prepared) => {}
            _ => return Err(SubsystemError::NotPrepared(tx)),
        }
        if let Some(first) = self.commit_blocked_by(tx) {
            return Err(SubsystemError::CommitOrderViolation {
                must_commit_first: first,
                attempted: tx,
            });
        }
        self.finish_commit(tx);
        Ok(())
    }

    /// Status of a transaction.
    pub fn tx_status(&self, tx: TxId) -> Option<TxStatus> {
        self.txs.get(&tx).map(|t| t.status)
    }

    /// Simulates a crash: all active transactions roll back, prepared
    /// transactions stay in doubt (their locks held), committed state
    /// survives.
    pub fn crash(&mut self) {
        let actives: Vec<TxId> = self
            .txs
            .iter()
            .filter(|(_, t)| t.status == TxStatus::Active)
            .map(|(&t, _)| t)
            .collect();
        for tx in actives {
            self.abort(tx).ok();
        }
        self.crashed = true;
    }

    /// Restarts after a crash; returns the in-doubt (prepared) transactions
    /// that the 2PC coordinator must resolve.
    pub fn recover(&mut self) -> Vec<TxId> {
        self.crashed = false;
        self.txs
            .iter()
            .filter(|(_, t)| t.status == TxStatus::Prepared)
            .map(|(&t, _)| t)
            .collect()
    }

    /// Whether the subsystem is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub() -> Subsystem {
        Subsystem::new(SubsystemId(0), "test")
    }

    #[test]
    fn execute_and_commit_applies_effects() {
        let mut s = sub();
        let (tx, _) = s.execute(&Program::set(Key(1), 42)).unwrap();
        s.commit(tx).unwrap();
        assert_eq!(s.peek(Key(1)), Some(42));
    }

    #[test]
    fn abort_rolls_back_in_reverse_order() {
        let mut s = sub();
        let (t0, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        s.commit(t0).unwrap();
        let p = Program::set(Key(1), 2).then(KvOp::Set(Key(1), 3));
        let (tx, _) = s.execute(&p).unwrap();
        assert_eq!(s.peek(Key(1)), Some(3));
        s.abort(tx).unwrap();
        assert_eq!(s.peek(Key(1)), Some(1));
    }

    #[test]
    fn reads_return_current_values() {
        let mut s = sub();
        let (t0, _) = s.execute(&Program::add(Key(5), 7)).unwrap();
        s.commit(t0).unwrap();
        let (tx, reads) = s.execute(&Program::read(Key(5))).unwrap();
        s.commit(tx).unwrap();
        assert_eq!(reads.0, vec![(Key(5), 7)]);
    }

    #[test]
    fn write_lock_blocks_second_writer() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        let err = s.execute(&Program::set(Key(1), 2)).unwrap_err();
        assert!(matches!(err, SubsystemError::KeyLocked { holder, .. } if holder == t1));
        s.commit(t1).unwrap();
        // After commit, the lock is free.
        let (t2, _) = s.execute(&Program::set(Key(1), 2)).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(s.peek(Key(1)), Some(2));
    }

    #[test]
    fn prepared_transaction_holds_locks_until_resolution() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        s.prepare(t1).unwrap();
        assert!(matches!(
            s.execute(&Program::set(Key(1), 2)).unwrap_err(),
            SubsystemError::KeyLocked { .. }
        ));
        s.commit_prepared(t1).unwrap();
        assert_eq!(s.tx_status(t1), Some(TxStatus::Committed));
        assert!(s.execute(&Program::set(Key(1), 2)).is_ok());
    }

    #[test]
    fn prepared_transaction_can_abort() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        s.prepare(t1).unwrap();
        s.abort(t1).unwrap();
        assert_eq!(s.peek(Key(1)), None);
        assert_eq!(s.tx_status(t1), Some(TxStatus::Aborted));
    }

    #[test]
    fn commit_prepared_requires_prepare() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        assert!(matches!(
            s.commit_prepared(t1).unwrap_err(),
            SubsystemError::NotPrepared(_)
        ));
    }

    #[test]
    fn commit_order_enforced() {
        // Weak order: t2 executes in parallel but cannot commit before t1.
        let mut s = sub();
        let (t1, _) = s.execute(&Program::add(Key(1), 1)).unwrap();
        let (t2, _) = s.execute(&Program::add(Key(1), 1)).unwrap();
        s.order_commits(t1, t2).unwrap();
        assert!(matches!(
            s.commit(t2).unwrap_err(),
            SubsystemError::CommitOrderViolation { .. }
        ));
        s.commit(t1).unwrap();
        s.commit(t2).unwrap();
        assert_eq!(s.peek(Key(1)), Some(2));
    }

    #[test]
    fn crash_rolls_back_actives_keeps_prepared_in_doubt() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        s.prepare(t1).unwrap();
        let (_t2, _) = s.execute(&Program::set(Key(2), 2)).unwrap();
        s.crash();
        assert!(s.is_crashed());
        assert!(matches!(s.begin().unwrap_err(), SubsystemError::Crashed));
        let in_doubt = s.recover();
        assert_eq!(in_doubt, vec![t1]);
        // The active transaction's effects are gone.
        assert_eq!(s.peek(Key(2)), None);
        // The prepared transaction is resolvable.
        s.commit_prepared(t1).unwrap();
        assert_eq!(s.peek(Key(1)), Some(1));
    }

    #[test]
    fn log_records_written() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        s.commit(t1).unwrap();
        assert!(matches!(s.log()[0], LogRecord::Begin(_)));
        assert!(s.log().iter().any(|r| matches!(r, LogRecord::Write { .. })));
        assert!(matches!(s.log().last(), Some(LogRecord::Commit(_))));
    }

    #[test]
    fn double_commit_rejected() {
        let mut s = sub();
        let (t1, _) = s.execute(&Program::set(Key(1), 1)).unwrap();
        s.commit(t1).unwrap();
        assert!(s.commit(t1).is_err());
        assert!(s.abort(t1).is_err());
    }

    #[test]
    fn own_writes_visible_to_own_reads() {
        let mut s = sub();
        let p = Program::set(Key(1), 5).then(KvOp::Read(Key(1)));
        let (tx, reads) = s.execute(&p).unwrap();
        s.commit(tx).unwrap();
        assert_eq!(reads.0, vec![(Key(1), 5)]);
    }
}
