//! # txproc-sim
//!
//! Deterministic discrete-event simulation substrate and synthetic workload
//! generation for the transactional-process-management experiments.
//!
//! * [`clock`] — virtual time and a deterministic event queue,
//! * [`workload`] — seeded generation of processes with guaranteed
//!   termination, service pools with physical programs, and a conflict
//!   structure controlled by `conflict_density`,
//! * [`metrics`] — counters and latency statistics collected per run,
//! * [`scenario`] — named adversarial workload shapes with machine-checked
//!   acceptance envelopes, shared by the benchmark and the gauntlet,
//! * [`timeseries`] — bounded sample ring + background sampler over the
//!   `txproc_core::telemetry` registry, with JSON export.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod metrics;
pub mod scenario;
pub mod timeseries;
pub mod workload;

pub use clock::{EventQueue, SimTime};
pub use metrics::{Metrics, RuntimeMetrics, ShardMetrics};
pub use scenario::{Envelope, Scenario};
pub use timeseries::{Sample, Sampler, TimeSeries};
pub use workload::{generate, try_generate, Workload, WorkloadConfig, WorkloadError};
