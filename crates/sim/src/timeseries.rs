//! Time-series sampling of the telemetry registry.
//!
//! A [`TimeSeries`] is a bounded ring of [`Sample`]s — full
//! [`Snapshot`]s stamped with wall time and, when the driver has one, virtual
//! time. Two feeders exist:
//!
//! * [`Sampler::spawn`] — a background thread snapshotting an enabled
//!   [`Telemetry`] handle every N ms of wall time (the concurrent driver's
//!   mode: real threads, real clocks);
//! * [`TimeSeries::push_virtual`] — an in-loop hook the virtual-time engine
//!   calls every K processed events, stamping the simulated clock.
//!
//! The ring keeps the most recent `cap` samples (flight-recorder semantics,
//! like `trace::RingSink`) and exports the whole series as a JSON document
//! (`txproc-timeseries/v1`) for `txproc stats` and the CI artifacts.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use txproc_core::telemetry::{Snapshot, Telemetry};

/// One sampled registry state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Wall nanoseconds since the registry was created (from the snapshot).
    pub wall_ns: u64,
    /// Driver virtual time at the sample, when the driver keeps one (the
    /// engine's simulated clock); `None` for wall-clock samplers.
    pub virtual_time: Option<u64>,
    /// The full registry snapshot.
    pub snapshot: Snapshot,
}

#[derive(Debug, Default)]
struct SeriesInner {
    cap: usize,
    buf: VecDeque<Sample>,
    dropped: u64,
}

/// A shared bounded ring of samples. Cloning yields another handle onto the
/// same buffer (the sampler thread holds one, the exporter another).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    inner: Arc<Mutex<SeriesInner>>,
}

impl TimeSeries {
    /// New ring holding at most `cap` samples (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(SeriesInner {
                cap: cap.max(1),
                buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
                dropped: 0,
            })),
        }
    }

    fn push_sample(&self, s: Sample) {
        let mut g = self.inner.lock().expect("timeseries poisoned");
        if g.buf.len() == g.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(s);
    }

    /// Append a wall-clock-stamped sample.
    pub fn push(&self, snapshot: Snapshot) {
        self.push_sample(Sample {
            wall_ns: snapshot.wall_ns,
            virtual_time: None,
            snapshot,
        });
    }

    /// Append a sample stamped with the driver's virtual time.
    pub fn push_virtual(&self, virtual_time: u64, snapshot: Snapshot) {
        self.push_sample(Sample {
            wall_ns: snapshot.wall_ns,
            virtual_time: Some(virtual_time),
            snapshot,
        });
    }

    /// Copy of the retained samples, oldest first.
    pub fn samples(&self) -> Vec<Sample> {
        self.inner
            .lock()
            .expect("timeseries poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("timeseries poisoned").buf.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of samples evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("timeseries poisoned").dropped
    }

    /// Export the series as a `txproc-timeseries/v1` JSON document.
    pub fn to_json(&self) -> String {
        let g = self.inner.lock().expect("timeseries poisoned");
        let doc = SeriesDoc {
            schema: "txproc-timeseries/v1".to_string(),
            dropped: g.dropped,
            samples: g.buf.iter().cloned().collect(),
        };
        serde_json::to_string(&doc).unwrap_or_else(|_| "{}".into())
    }
}

/// The on-disk shape of an exported series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesDoc {
    /// Schema tag, `txproc-timeseries/v1`.
    pub schema: String,
    /// Samples evicted by the ring before export.
    pub dropped: u64,
    /// Retained samples, oldest first.
    pub samples: Vec<Sample>,
}

/// Parse a series document back (for tests and downstream tooling).
pub fn from_json(s: &str) -> Result<SeriesDoc, serde_json::Error> {
    serde_json::from_str(s)
}

/// A background wall-clock sampler thread. Stops (and takes one final
/// sample) on [`Sampler::stop`] or drop.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Snapshot `tele` into `series` every `every` until stopped. A disabled
    /// handle yields a sampler that records nothing.
    pub fn spawn(tele: Telemetry, every: Duration, series: TimeSeries) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let every = every.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("txproc-sampler".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    if let Some(snap) = tele.snapshot() {
                        series.push(snap);
                    }
                    // Nap in small slices so stop() returns promptly even
                    // for long sampling intervals.
                    let mut left = every;
                    while !flag.load(Ordering::Relaxed) && left > Duration::ZERO {
                        let nap = left.min(Duration::from_millis(5));
                        std::thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
                if let Some(snap) = tele.snapshot() {
                    series.push(snap);
                }
            })
            .expect("spawn sampler thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread, wait for its final sample, and return.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txproc_core::telemetry::Phase;

    #[test]
    fn ring_keeps_most_recent_samples() {
        let tele = Telemetry::on();
        let series = TimeSeries::new(3);
        for vt in 0..5u64 {
            tele.phase_ns(Phase::Certify, 10);
            series.push_virtual(vt, tele.snapshot().unwrap());
        }
        let samples = series.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(series.dropped(), 2);
        assert_eq!(samples[0].virtual_time, Some(2));
        assert_eq!(samples[2].virtual_time, Some(4));
        // Monotone counts: later samples saw more records.
        let counts: Vec<u64> = samples
            .iter()
            .map(|s| s.snapshot.phase(Phase::Certify).unwrap().count)
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sampler_collects_and_stops() {
        let tele = Telemetry::on();
        tele.counter("events_total", &[]).add(7);
        let series = TimeSeries::new(128);
        let sampler = Sampler::spawn(tele.clone(), Duration::from_millis(2), series.clone());
        std::thread::sleep(Duration::from_millis(20));
        sampler.stop();
        let n = series.len();
        assert!(n >= 2, "expected ≥2 samples, got {n}");
        // No further samples after stop.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(series.len(), n);
        assert!(series.samples()[0]
            .snapshot
            .instruments
            .iter()
            .any(|i| i.name == "events_total" && i.value == 7));
    }

    #[test]
    fn disabled_telemetry_yields_empty_series() {
        let series = TimeSeries::new(16);
        let sampler = Sampler::spawn(Telemetry::off(), Duration::from_millis(1), series.clone());
        std::thread::sleep(Duration::from_millis(10));
        sampler.stop();
        assert!(series.is_empty());
    }

    #[test]
    fn json_export_round_trips() {
        let tele = Telemetry::on();
        tele.phase_ns(Phase::Policy, 42);
        let series = TimeSeries::new(8);
        series.push_virtual(100, tele.snapshot().unwrap());
        series.push(tele.snapshot().unwrap());
        let json = series.to_json();
        let doc = from_json(&json).expect("series parses back");
        assert_eq!(doc.schema, "txproc-timeseries/v1");
        assert_eq!(doc.samples.len(), 2);
        assert_eq!(doc.samples[0].virtual_time, Some(100));
        assert_eq!(doc.samples[1].virtual_time, None);
        assert_eq!(doc.samples, series.samples());
    }
}
