//! Execution metrics collected by the engine and reported by the benchmark
//! harness.

use serde::{Deserialize, Serialize};

/// Counters and latency samples of one scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Processes that committed.
    pub committed: u64,
    /// Processes that aborted (including cascades).
    pub aborted: u64,
    /// Cascading aborts triggered by other processes' aborts.
    pub cascaded: u64,
    /// Forward activities executed (committed at a subsystem).
    pub activities: u64,
    /// Compensating activities executed.
    pub compensations: u64,
    /// Retriable invocation retries.
    pub retries: u64,
    /// Activities executed under deferred commit (2PC prepared).
    pub deferred_commits: u64,
    /// Scheduling requests answered with "wait".
    pub waits: u64,
    /// Scheduling requests rejected (would close a cycle).
    pub rejections: u64,
    /// Correctness violations observed (non-PRED histories emitted).
    pub violations: u64,
    /// Virtual end-to-end latency samples, one per terminated process.
    pub latencies: Vec<u64>,
    /// Virtual makespan of the whole run.
    pub makespan: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total terminated processes.
    pub fn terminated(&self) -> u64 {
        self.committed + self.aborted
    }

    /// Throughput in committed processes per 1000 virtual time units.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.makespan as f64
        }
    }

    /// Latency percentile (0.0..=1.0) over the collected samples.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Mean latency.
    pub fn latency_mean(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64)
        }
    }

    /// Merges another run's counters into this one (for aggregation over
    /// repetitions).
    pub fn merge(&mut self, other: &Metrics) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.cascaded += other.cascaded;
        self.activities += other.activities;
        self.compensations += other.compensations;
        self.retries += other.retries;
        self.deferred_commits += other.deferred_commits;
        self.waits += other.waits;
        self.rejections += other.rejections;
        self.violations += other.violations;
        self.latencies.extend_from_slice(&other.latencies);
        self.makespan += other.makespan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_computation() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            ..Metrics::new()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert_eq!(Metrics::new().throughput_per_kilotick(), 0.0);
    }

    #[test]
    fn percentiles() {
        let m = Metrics {
            latencies: vec![10, 20, 30, 40, 50],
            ..Metrics::new()
        };
        assert_eq!(m.latency_percentile(0.0), Some(10));
        assert_eq!(m.latency_percentile(0.5), Some(30));
        assert_eq!(m.latency_percentile(1.0), Some(50));
        assert_eq!(m.latency_mean(), Some(30.0));
        assert_eq!(Metrics::new().latency_percentile(0.5), None);
        assert_eq!(Metrics::new().latency_mean(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            committed: 1,
            aborted: 2,
            latencies: vec![5],
            makespan: 100,
            ..Metrics::new()
        };
        let b = Metrics {
            committed: 3,
            cascaded: 1,
            latencies: vec![7, 9],
            makespan: 50,
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.committed, 4);
        assert_eq!(a.aborted, 2);
        assert_eq!(a.cascaded, 1);
        assert_eq!(a.terminated(), 6);
        assert_eq!(a.latencies, vec![5, 7, 9]);
        assert_eq!(a.makespan, 150);
    }
}
