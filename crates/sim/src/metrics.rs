//! Execution metrics collected by the engine and reported by the benchmark
//! harness.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Abort counts broken down by first cause (mirrors
/// `txproc_core::trace::AbortReason`). A trace-derived aggregate: the sum of
/// the fields equals the number of `AbortStarted` decisions, which can exceed
/// [`Metrics::aborted`] when an abort is initiated but the run ends first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortReasons {
    /// Admission rejected: execution would close a serialization cycle.
    pub rejected: u64,
    /// Victim of another process's abort (group abort / Lemma 3).
    pub cascade: u64,
    /// Definitive activity failure with no remaining alternative.
    pub failure: u64,
    /// Certification livelock breaker escalated.
    pub cert_stuck: u64,
    /// Deadlock breaker picked the process as victim.
    pub deadlock: u64,
    /// Abort requested from outside the scheduler.
    pub external: u64,
}

impl AbortReasons {
    /// Total abort initiations across all causes.
    pub fn total(&self) -> u64 {
        self.rejected
            + self.cascade
            + self.failure
            + self.cert_stuck
            + self.deadlock
            + self.external
    }

    /// Accumulates another run's breakdown.
    pub fn merge(&mut self, other: &AbortReasons) {
        self.rejected += other.rejected;
        self.cascade += other.cascade;
        self.failure += other.failure;
        self.cert_stuck += other.cert_stuck;
        self.deadlock += other.deadlock;
        self.external += other.external;
    }
}

/// Per-shard lock and wakeup observability collected by the sharded
/// concurrent driver (one entry per conflict-domain shard; the single-lock
/// configuration reports exactly one).
///
/// `wakeups` counts condvar returns in the shard's workers; a wakeup is
/// *spurious* when the shard generation did not change while waiting (the
/// waiter re-checked state for nothing — with targeted notification these
/// are almost exclusively fallback-timeout polls, whereas the pre-notify
/// driver paid one speculative wakeup per fixed-interval poll). `notifies`
/// counts `notify_all` broadcasts after a state change.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Shard id (dense, ordered by smallest member process id).
    pub shard: u32,
    /// Processes scheduled by this shard.
    pub processes: u64,
    /// History events emitted by this shard.
    pub events: u64,
    /// Total wall-clock time workers spent blocked acquiring the shard lock.
    pub lock_wait_ns: u64,
    /// Total wall-clock time workers held the shard lock (condvar-wait time
    /// excluded).
    pub lock_hold_ns: u64,
    /// Condvar broadcasts sent after a visible state change.
    pub notifies: u64,
    /// Condvar wait returns observed by the shard's workers.
    pub wakeups: u64,
    /// Wait returns that observed no state change (avoidable re-checks).
    pub spurious_wakeups: u64,
}

/// Counters and latency samples of one scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Processes that committed.
    pub committed: u64,
    /// Processes that aborted (including cascades).
    pub aborted: u64,
    /// Cascading aborts triggered by other processes' aborts.
    pub cascaded: u64,
    /// Forward activities executed (committed at a subsystem).
    pub activities: u64,
    /// Compensating activities executed.
    pub compensations: u64,
    /// Retriable invocation retries.
    pub retries: u64,
    /// Activities executed under deferred commit (2PC prepared).
    pub deferred_commits: u64,
    /// Scheduling requests answered with "wait".
    pub waits: u64,
    /// Scheduling requests rejected (would close a cycle).
    pub rejections: u64,
    /// Correctness violations observed (non-PRED histories emitted).
    pub violations: u64,
    /// Virtual end-to-end latency samples, one per terminated process.
    pub latencies: Vec<u64>,
    /// End-to-end latency keyed by process id (same samples as
    /// [`Metrics::latencies`]; lets reports segment latency by tenant).
    #[serde(default)]
    pub latency_by_pid: BTreeMap<u32, u64>,
    /// Virtual makespan of the whole run.
    pub makespan: u64,
    /// Per-process time spent blocked (virtual time in the deterministic
    /// engine; the concurrent driver does not populate this — its waits are
    /// wall-clock and counted in [`Metrics::waits`] instead).
    pub blocked_time: BTreeMap<u32, u64>,
    /// Abort initiations broken down by first cause.
    pub abort_reasons: AbortReasons,
    /// Certification attempts answered "not PRED" (each forces a defer,
    /// retry or escalation).
    pub cert_failures: u64,
    /// Per-shard lock/wakeup observability (sharded concurrent driver only;
    /// empty for the virtual-time engine).
    pub shards: Vec<ShardMetrics>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total terminated processes.
    pub fn terminated(&self) -> u64 {
        self.committed + self.aborted
    }

    /// Throughput in committed processes per 1000 virtual time units.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.makespan as f64
        }
    }

    /// Latency percentile (0.0..=1.0) over the collected samples.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Mean latency.
    pub fn latency_mean(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64)
        }
    }

    /// Merges another run's counters into this one (for aggregation over
    /// repetitions).
    pub fn merge(&mut self, other: &Metrics) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.cascaded += other.cascaded;
        self.activities += other.activities;
        self.compensations += other.compensations;
        self.retries += other.retries;
        self.deferred_commits += other.deferred_commits;
        self.waits += other.waits;
        self.rejections += other.rejections;
        self.violations += other.violations;
        self.latencies.extend_from_slice(&other.latencies);
        for (&pid, &lat) in &other.latency_by_pid {
            self.latency_by_pid.entry(pid).or_insert(lat);
        }
        self.makespan += other.makespan;
        for (&pid, &t) in &other.blocked_time {
            *self.blocked_time.entry(pid).or_insert(0) += t;
        }
        self.abort_reasons.merge(&other.abort_reasons);
        self.cert_failures += other.cert_failures;
        self.shards.extend_from_slice(&other.shards);
    }

    /// Total blocked time across all processes.
    pub fn blocked_total(&self) -> u64 {
        self.blocked_time.values().sum()
    }

    /// Total condvar wakeups across shards.
    pub fn wakeups_total(&self) -> u64 {
        self.shards.iter().map(|s| s.wakeups).sum()
    }

    /// Total spurious (no-state-change) wakeups across shards.
    pub fn spurious_wakeups_total(&self) -> u64 {
        self.shards.iter().map(|s| s.spurious_wakeups).sum()
    }

    /// Total wall-clock nanoseconds spent waiting for shard locks.
    pub fn lock_wait_total_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_wait_ns).sum()
    }

    /// Total wall-clock nanoseconds shard locks were held.
    pub fn lock_hold_total_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_hold_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_computation() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            ..Metrics::new()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert_eq!(Metrics::new().throughput_per_kilotick(), 0.0);
    }

    #[test]
    fn percentiles() {
        let m = Metrics {
            latencies: vec![10, 20, 30, 40, 50],
            ..Metrics::new()
        };
        assert_eq!(m.latency_percentile(0.0), Some(10));
        assert_eq!(m.latency_percentile(0.5), Some(30));
        assert_eq!(m.latency_percentile(1.0), Some(50));
        assert_eq!(m.latency_mean(), Some(30.0));
        assert_eq!(Metrics::new().latency_percentile(0.5), None);
        assert_eq!(Metrics::new().latency_mean(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            committed: 1,
            aborted: 2,
            latencies: vec![5],
            makespan: 100,
            ..Metrics::new()
        };
        let b = Metrics {
            committed: 3,
            cascaded: 1,
            latencies: vec![7, 9],
            makespan: 50,
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.committed, 4);
        assert_eq!(a.aborted, 2);
        assert_eq!(a.cascaded, 1);
        assert_eq!(a.terminated(), 6);
        assert_eq!(a.latencies, vec![5, 7, 9]);
        assert_eq!(a.makespan, 150);
    }

    #[test]
    fn shard_metrics_merge_and_totals() {
        let mut a = Metrics {
            shards: vec![ShardMetrics {
                shard: 0,
                processes: 3,
                events: 12,
                lock_wait_ns: 100,
                lock_hold_ns: 400,
                notifies: 9,
                wakeups: 20,
                spurious_wakeups: 5,
            }],
            ..Metrics::new()
        };
        let b = Metrics {
            shards: vec![ShardMetrics {
                shard: 1,
                processes: 2,
                events: 8,
                lock_wait_ns: 50,
                lock_hold_ns: 200,
                notifies: 4,
                wakeups: 10,
                spurious_wakeups: 1,
            }],
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.shards.len(), 2);
        assert_eq!(a.wakeups_total(), 30);
        assert_eq!(a.spurious_wakeups_total(), 6);
        assert_eq!(a.lock_wait_total_ns(), 150);
        assert_eq!(a.lock_hold_total_ns(), 600);
    }
}
