//! Execution metrics collected by the engine and reported by the benchmark
//! harness.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Abort counts broken down by first cause (mirrors
/// `txproc_core::trace::AbortReason`). A trace-derived aggregate: the sum of
/// the fields equals the number of `AbortStarted` decisions, which can exceed
/// [`Metrics::aborted`] when an abort is initiated but the run ends first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortReasons {
    /// Admission rejected: execution would close a serialization cycle.
    pub rejected: u64,
    /// Victim of another process's abort (group abort / Lemma 3).
    pub cascade: u64,
    /// Definitive activity failure with no remaining alternative.
    pub failure: u64,
    /// Certification livelock breaker escalated.
    pub cert_stuck: u64,
    /// Deadlock breaker picked the process as victim.
    pub deadlock: u64,
    /// Abort requested from outside the scheduler.
    pub external: u64,
}

impl AbortReasons {
    /// Total abort initiations across all causes.
    pub fn total(&self) -> u64 {
        self.rejected
            + self.cascade
            + self.failure
            + self.cert_stuck
            + self.deadlock
            + self.external
    }

    /// Accumulates another run's breakdown.
    pub fn merge(&mut self, other: &AbortReasons) {
        self.rejected += other.rejected;
        self.cascade += other.cascade;
        self.failure += other.failure;
        self.cert_stuck += other.cert_stuck;
        self.deadlock += other.deadlock;
        self.external += other.external;
    }
}

/// Per-shard lock and wakeup observability collected by the sharded
/// concurrent driver (one entry per conflict-domain shard; the single-lock
/// configuration reports exactly one).
///
/// `wakeups` counts condvar returns in the shard's workers; a wakeup is
/// *spurious* when the shard generation did not change while waiting (the
/// waiter re-checked state for nothing — with targeted notification these
/// are almost exclusively fallback-timeout polls, whereas the pre-notify
/// driver paid one speculative wakeup per fixed-interval poll). `notifies`
/// counts `notify_all` broadcasts after a state change.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Shard id (dense, ordered by smallest member process id).
    pub shard: u32,
    /// Processes scheduled by this shard.
    pub processes: u64,
    /// History events emitted by this shard.
    pub events: u64,
    /// Total wall-clock time workers spent blocked acquiring the shard lock.
    pub lock_wait_ns: u64,
    /// Total wall-clock time workers held the shard lock (condvar-wait time
    /// excluded).
    pub lock_hold_ns: u64,
    /// Condvar broadcasts sent after a visible state change.
    pub notifies: u64,
    /// Condvar wait returns observed by the shard's workers.
    pub wakeups: u64,
    /// Wait returns that observed no state change (avoidable re-checks).
    pub spurious_wakeups: u64,
}

/// Number of log₂ buckets in the scheduling-delay histogram (bucket `i`
/// holds delays in `[2^i, 2^(i+1))` ns; bucket 0 also holds 0).
pub const SCHED_DELAY_BUCKETS: usize = 40;

/// Runtime-level observability collected by the concurrent driver: worker
/// utilization, run-queue depth and scheduling delay (time a runnable
/// process sat in a run queue before its next step). Populated by both
/// runtimes; queue/delay fields are meaningful for the event-driven one
/// (the thread runtime has no run queues — a runnable process is a ready
/// thread).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeMetrics {
    /// Runtime kind label (`"threads"` or `"events"`).
    pub runtime: String,
    /// Worker threads used (thread runtime: one per process).
    pub workers: u64,
    /// State-machine steps executed (one `advance` call each).
    pub steps: u64,
    /// Re-poll rounds: all runnable work drained with waiters left, so the
    /// waiters were re-queued to drive deadlock escalation (the event
    /// runtime's replacement for the removed fallback-timeout poll).
    pub repolls: u64,
    /// Peak run-queue depth observed on any single shard queue.
    pub run_queue_peak: u64,
    /// Peak number of concurrently in-flight (arrived, not terminated)
    /// processes across the whole run.
    pub in_flight_peak: u64,
    /// Wall-clock nanoseconds workers spent stepping state machines.
    pub worker_busy_ns: u64,
    /// Wall-clock nanoseconds workers spent idle (napping for arrivals).
    pub worker_idle_ns: u64,
    /// Log₂ histogram of scheduling delays in nanoseconds: bucket `i`
    /// counts delays in `[2^i, 2^(i+1))`.
    pub sched_delay_ns: Vec<u64>,
    /// Number of scheduling-delay samples recorded. Kept explicitly so the
    /// invariant *histogram mass = sample count* is checkable after merges
    /// (absent in pre-v6 reports and defaulted on read).
    #[serde(default)]
    pub sched_delay_samples: u64,
}

impl RuntimeMetrics {
    /// Creates zeroed metrics for a runtime label.
    pub fn new(runtime: &str, workers: u64) -> Self {
        Self {
            runtime: runtime.to_string(),
            workers,
            sched_delay_ns: vec![0; SCHED_DELAY_BUCKETS],
            ..Self::default()
        }
    }

    /// Records one scheduling-delay sample.
    pub fn record_delay_ns(&mut self, ns: u64) {
        if self.sched_delay_ns.is_empty() {
            self.sched_delay_ns = vec![0; SCHED_DELAY_BUCKETS];
        }
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(SCHED_DELAY_BUCKETS - 1)
        };
        self.sched_delay_ns[bucket] += 1;
        self.sched_delay_samples += 1;
    }

    /// Scheduling-delay percentile (0.0..=1.0) in nanoseconds, resolved to
    /// the upper edge of the histogram bucket containing the quantile.
    pub fn delay_percentile_ns(&self, q: f64) -> Option<u64> {
        let total: u64 = self.sched_delay_ns.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.sched_delay_ns.iter().enumerate() {
            seen += n;
            if n > 0 && seen > rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        // Unreachable when rank < total, but resolve to the top non-empty
        // bucket rather than pretending the histogram was empty.
        self.delay_max_ns()
    }

    /// Upper edge of the highest non-empty delay bucket (the histogram's
    /// resolution of the maximum sample), `None` when no samples exist.
    pub fn delay_max_ns(&self) -> Option<u64> {
        self.sched_delay_ns
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| 1u64 << (i + 1).min(63))
    }

    /// Checks the aggregation invariants this structure promises and returns
    /// a human-readable description of each violation (empty = all hold):
    ///
    /// 1. histogram mass = sample count (`sched_delay_samples`);
    /// 2. quantile monotonicity: p50 ≤ p95 ≤ max;
    /// 3. when the run's wall-clock duration is known: busy + idle time does
    ///    not exceed `workers × wall` (5% slack for timer skew — idle only
    ///    counts intentional naps, so the sum is one-sided).
    ///
    /// Drivers `debug_assert!` on this after merging per-worker metrics.
    pub fn invariant_violations(&self, wall_ns: Option<u64>) -> Vec<String> {
        let mut bad = Vec::new();
        let mass: u64 = self.sched_delay_ns.iter().sum();
        if mass != self.sched_delay_samples {
            bad.push(format!(
                "histogram mass {mass} != sample count {}",
                self.sched_delay_samples
            ));
        }
        if let (Some(p50), Some(p95), Some(max)) = (
            self.delay_percentile_ns(0.50),
            self.delay_percentile_ns(0.95),
            self.delay_max_ns(),
        ) {
            if p50 > p95 || p95 > max {
                bad.push(format!(
                    "delay quantiles not monotone: p50 {p50} / p95 {p95} / max {max}"
                ));
            }
        }
        if let Some(wall) = wall_ns {
            let accounted = self.worker_busy_ns + self.worker_idle_ns;
            let budget = self.workers.saturating_mul(wall);
            if accounted as f64 > budget as f64 * 1.05 + 1_000_000.0 {
                bad.push(format!(
                    "busy+idle {accounted}ns exceeds workers×wall {budget}ns \
                     ({} workers × {wall}ns)",
                    self.workers
                ));
            }
        }
        bad
    }

    /// Fraction of worker wall-clock time spent stepping state machines.
    pub fn utilization(&self) -> f64 {
        let total = self.worker_busy_ns + self.worker_idle_ns;
        if total == 0 {
            0.0
        } else {
            self.worker_busy_ns as f64 / total as f64
        }
    }

    /// Accumulates another run's (or worker's) counters.
    pub fn merge(&mut self, other: &RuntimeMetrics) {
        if self.runtime.is_empty() {
            self.runtime = other.runtime.clone();
        }
        self.workers = self.workers.max(other.workers);
        self.steps += other.steps;
        self.repolls += other.repolls;
        self.run_queue_peak = self.run_queue_peak.max(other.run_queue_peak);
        self.in_flight_peak = self.in_flight_peak.max(other.in_flight_peak);
        self.worker_busy_ns += other.worker_busy_ns;
        self.worker_idle_ns += other.worker_idle_ns;
        if self.sched_delay_ns.len() < other.sched_delay_ns.len() {
            self.sched_delay_ns.resize(other.sched_delay_ns.len(), 0);
        }
        for (i, &n) in other.sched_delay_ns.iter().enumerate() {
            self.sched_delay_ns[i] += n;
        }
        self.sched_delay_samples += other.sched_delay_samples;
        debug_assert_eq!(
            self.sched_delay_ns.iter().sum::<u64>(),
            self.sched_delay_samples,
            "merge broke histogram mass = sample count"
        );
    }
}

/// Counters and latency samples of one scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Processes that committed.
    pub committed: u64,
    /// Processes that aborted (including cascades).
    pub aborted: u64,
    /// Cascading aborts triggered by other processes' aborts.
    pub cascaded: u64,
    /// Forward activities executed (committed at a subsystem).
    pub activities: u64,
    /// Compensating activities executed.
    pub compensations: u64,
    /// Retriable invocation retries.
    pub retries: u64,
    /// Activities executed under deferred commit (2PC prepared).
    pub deferred_commits: u64,
    /// Scheduling requests answered with "wait".
    pub waits: u64,
    /// Scheduling requests rejected (would close a cycle).
    pub rejections: u64,
    /// Correctness violations observed (non-PRED histories emitted).
    pub violations: u64,
    /// Virtual end-to-end latency samples, one per terminated process.
    pub latencies: Vec<u64>,
    /// End-to-end latency keyed by process id (same samples as
    /// [`Metrics::latencies`]; lets reports segment latency by tenant).
    #[serde(default)]
    pub latency_by_pid: BTreeMap<u32, u64>,
    /// Virtual makespan of the whole run.
    pub makespan: u64,
    /// Per-process time spent blocked (virtual time in the deterministic
    /// engine; the concurrent driver does not populate this — its waits are
    /// wall-clock and counted in [`Metrics::waits`] instead).
    pub blocked_time: BTreeMap<u32, u64>,
    /// Abort initiations broken down by first cause.
    pub abort_reasons: AbortReasons,
    /// Certification attempts answered "not PRED" (each forces a defer,
    /// retry or escalation).
    pub cert_failures: u64,
    /// Per-shard lock/wakeup observability (sharded concurrent driver only;
    /// empty for the virtual-time engine).
    pub shards: Vec<ShardMetrics>,
    /// Runtime-level observability (concurrent driver only; `None` for the
    /// virtual-time engine).
    #[serde(default)]
    pub runtime: Option<RuntimeMetrics>,
    /// Epochs closed by the batching path (trace flushes and grouped 2PC
    /// release rounds). Zero whenever `epoch ≤ 1`: a batch of one *is* the
    /// per-event path, and counting it would break the epoch-1 ≡ per-event
    /// metrics identity the differential oracle pins.
    #[serde(default)]
    pub epoch_batches: u64,
    /// Events covered by those epochs (fill × batches; mean fill =
    /// `epoch_events / epoch_batches`).
    #[serde(default)]
    pub epoch_events: u64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total terminated processes.
    pub fn terminated(&self) -> u64 {
        self.committed + self.aborted
    }

    /// Throughput in committed processes per 1000 virtual time units.
    pub fn throughput_per_kilotick(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.makespan as f64
        }
    }

    /// Latency percentile (0.0..=1.0) over the collected samples.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(v[idx])
    }

    /// Mean latency.
    pub fn latency_mean(&self) -> Option<f64> {
        if self.latencies.is_empty() {
            None
        } else {
            Some(self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64)
        }
    }

    /// Merges another run's counters into this one (for aggregation over
    /// repetitions).
    pub fn merge(&mut self, other: &Metrics) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.cascaded += other.cascaded;
        self.activities += other.activities;
        self.compensations += other.compensations;
        self.retries += other.retries;
        self.deferred_commits += other.deferred_commits;
        self.waits += other.waits;
        self.rejections += other.rejections;
        self.violations += other.violations;
        self.latencies.extend_from_slice(&other.latencies);
        for (&pid, &lat) in &other.latency_by_pid {
            self.latency_by_pid.entry(pid).or_insert(lat);
        }
        self.makespan += other.makespan;
        for (&pid, &t) in &other.blocked_time {
            *self.blocked_time.entry(pid).or_insert(0) += t;
        }
        self.abort_reasons.merge(&other.abort_reasons);
        self.cert_failures += other.cert_failures;
        self.shards.extend_from_slice(&other.shards);
        if let Some(rt) = &other.runtime {
            match &mut self.runtime {
                Some(mine) => mine.merge(rt),
                None => self.runtime = Some(rt.clone()),
            }
        }
        self.epoch_batches += other.epoch_batches;
        self.epoch_events += other.epoch_events;
    }

    /// Total blocked time across all processes.
    pub fn blocked_total(&self) -> u64 {
        self.blocked_time.values().sum()
    }

    /// Total condvar wakeups across shards.
    pub fn wakeups_total(&self) -> u64 {
        self.shards.iter().map(|s| s.wakeups).sum()
    }

    /// Total spurious (no-state-change) wakeups across shards.
    pub fn spurious_wakeups_total(&self) -> u64 {
        self.shards.iter().map(|s| s.spurious_wakeups).sum()
    }

    /// Total wall-clock nanoseconds spent waiting for shard locks.
    pub fn lock_wait_total_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_wait_ns).sum()
    }

    /// Total wall-clock nanoseconds shard locks were held.
    pub fn lock_hold_total_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.lock_hold_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_computation() {
        let m = Metrics {
            committed: 10,
            makespan: 2000,
            ..Metrics::new()
        };
        assert!((m.throughput_per_kilotick() - 5.0).abs() < 1e-9);
        assert_eq!(Metrics::new().throughput_per_kilotick(), 0.0);
    }

    #[test]
    fn percentiles() {
        let m = Metrics {
            latencies: vec![10, 20, 30, 40, 50],
            ..Metrics::new()
        };
        assert_eq!(m.latency_percentile(0.0), Some(10));
        assert_eq!(m.latency_percentile(0.5), Some(30));
        assert_eq!(m.latency_percentile(1.0), Some(50));
        assert_eq!(m.latency_mean(), Some(30.0));
        assert_eq!(Metrics::new().latency_percentile(0.5), None);
        assert_eq!(Metrics::new().latency_mean(), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics {
            committed: 1,
            aborted: 2,
            latencies: vec![5],
            makespan: 100,
            ..Metrics::new()
        };
        let b = Metrics {
            committed: 3,
            cascaded: 1,
            latencies: vec![7, 9],
            makespan: 50,
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.committed, 4);
        assert_eq!(a.aborted, 2);
        assert_eq!(a.cascaded, 1);
        assert_eq!(a.terminated(), 6);
        assert_eq!(a.latencies, vec![5, 7, 9]);
        assert_eq!(a.makespan, 150);
    }

    #[test]
    fn runtime_metrics_delay_histogram_and_merge() {
        let mut a = RuntimeMetrics::new("events", 4);
        for ns in [0, 1, 3, 1000, 1_000_000] {
            a.record_delay_ns(ns);
        }
        assert_eq!(a.sched_delay_ns.iter().sum::<u64>(), 5);
        // p0 resolves to the smallest non-empty bucket's upper edge.
        assert_eq!(a.delay_percentile_ns(0.0), Some(2));
        assert!(a.delay_percentile_ns(1.0).unwrap() >= 1_000_000);
        assert_eq!(
            RuntimeMetrics::new("events", 1).delay_percentile_ns(0.5),
            None
        );

        let mut b = RuntimeMetrics::new("events", 2);
        b.steps = 10;
        b.run_queue_peak = 7;
        b.in_flight_peak = 3;
        b.worker_busy_ns = 30;
        b.worker_idle_ns = 10;
        b.record_delay_ns(5);
        a.merge(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.steps, 10);
        assert_eq!(a.run_queue_peak, 7);
        assert_eq!(a.sched_delay_ns.iter().sum::<u64>(), 6);
        assert!((b.utilization() - 0.75).abs() < 1e-9);

        let mut m = Metrics::new();
        let other = Metrics {
            runtime: Some(b.clone()),
            ..Metrics::new()
        };
        m.merge(&other);
        m.merge(&other);
        assert_eq!(m.runtime.as_ref().unwrap().steps, 20);
    }

    #[test]
    fn shard_metrics_merge_and_totals() {
        let mut a = Metrics {
            shards: vec![ShardMetrics {
                shard: 0,
                processes: 3,
                events: 12,
                lock_wait_ns: 100,
                lock_hold_ns: 400,
                notifies: 9,
                wakeups: 20,
                spurious_wakeups: 5,
            }],
            ..Metrics::new()
        };
        let b = Metrics {
            shards: vec![ShardMetrics {
                shard: 1,
                processes: 2,
                events: 8,
                lock_wait_ns: 50,
                lock_hold_ns: 200,
                notifies: 4,
                wakeups: 10,
                spurious_wakeups: 1,
            }],
            ..Metrics::new()
        };
        a.merge(&b);
        assert_eq!(a.shards.len(), 2);
        assert_eq!(a.wakeups_total(), 30);
        assert_eq!(a.spurious_wakeups_total(), 6);
        assert_eq!(a.lock_wait_total_ns(), 150);
        assert_eq!(a.lock_hold_total_ns(), 600);
    }
}
