//! Synthetic workload generation: random processes with guaranteed
//! termination, deployed over simulated subsystems, with a tunable conflict
//! structure.
//!
//! The generator produces *strictly well-formed flex* processes
//! (`comp* pivot tail`, recursively, with all-retriable fallback branches —
//! \[ZNBB94\], §3.1), assigns every activity a service drawn from per-kind
//! service pools, gives each service a physical program over hot (shared)
//! and cold (private) keys, and declares the conflict matrix from the
//! physical programs (plus perfect-commutativity closure). `conflict_density`
//! steers how often services touch hot keys and therefore how often
//! processes actually conflict.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use txproc_core::activity::Catalog;
use txproc_core::conflict::ConflictMatrix;
use txproc_core::flex::FlexAnalysis;
use txproc_core::ids::{ProcessId, ServiceId};
use txproc_core::process::ProcessBuilder;
use txproc_core::spec::Spec;
use txproc_subsystem::deploy::Deployment;
use txproc_subsystem::kv::{Key, KvOp, Program};
use txproc_subsystem::subsystem::SubsystemId;

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed: equal seeds produce equal workloads.
    pub seed: u64,
    /// Number of processes.
    pub processes: usize,
    /// Compensatable-prefix length range (inclusive).
    pub prefix_len: (usize, usize),
    /// Retriable-tail length range (inclusive).
    pub tail_len: (usize, usize),
    /// Probability that a pivot carries an alternative branch (recursion).
    pub alternative_probability: f64,
    /// Maximum nesting depth of alternatives.
    pub max_depth: usize,
    /// Size of each service pool (compensatable / pivot / retriable).
    pub services_per_kind: usize,
    /// Number of subsystems services are spread over.
    pub subsystems: usize,
    /// Number of hot (shared) keys per subsystem.
    pub hot_keys: u64,
    /// Number of independent service clusters (tenants). Each cluster gets
    /// its own service pools and its own subsystems (and therefore its own
    /// hot-key space); process `p` draws services only from cluster
    /// `p % clusters`. Clusters never share keys, so `conflict_density`
    /// steers *intra*-cluster contention while the potential-conflict graph
    /// decomposes into at least `clusters` independent parts — the
    /// multi-tenant shape the conflict-domain sharded driver exploits.
    /// `1` (the default) reproduces the classic single-pool workload
    /// bit-for-bit.
    pub clusters: usize,
    /// Probability that a service operation touches a hot key.
    pub conflict_density: f64,
    /// Probability that a failable activity fails at runtime.
    pub failure_probability: f64,
    /// Mean service duration (virtual time units).
    pub mean_duration: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            processes: 8,
            prefix_len: (1, 3),
            tail_len: (1, 2),
            alternative_probability: 0.4,
            max_depth: 2,
            services_per_kind: 16,
            subsystems: 3,
            hot_keys: 4,
            clusters: 1,
            conflict_density: 0.3,
            failure_probability: 0.1,
            mean_duration: 10,
        }
    }
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Catalog + conflicts + processes.
    pub spec: Spec,
    /// Physical placement and programs.
    pub deployment: Deployment,
    /// The configuration that produced it.
    pub config: WorkloadConfig,
}

/// Generates a workload from a configuration. Deterministic in `seed`.
pub fn generate(config: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut catalog = Catalog::new();
    let mut deployment = Deployment::new();

    let mut next_cold_key: u64 = 1_000_000;
    let mut make_program = |rng: &mut StdRng, subsystem: u32, writes: bool| -> Program {
        let ops = rng.gen_range(1..=3);
        let mut program = Program::empty();
        for _ in 0..ops {
            let key = if rng.gen_bool(config.conflict_density) {
                // Hot key within the subsystem's shared pool.
                Key(u64::from(subsystem) * 10_000 + rng.gen_range(0..config.hot_keys))
            } else {
                next_cold_key += 1;
                Key(next_cold_key)
            };
            let op = if !writes {
                KvOp::Read(key)
            } else {
                // Mostly commuting increments: two invocations of the same
                // service then conflict only through reads/overwrites, so
                // `conflict_density` (hot-key sharing) stays the dominant
                // contention knob.
                match rng.gen_range(0..10) {
                    0..=5 => KvOp::Add(key, rng.gen_range(1..100)),
                    6 => KvOp::Set(key, rng.gen_range(1..100)),
                    _ => KvOp::Read(key),
                }
            };
            program = program.then(op);
        }
        program
    };

    // Each cluster owns disjoint subsystems (and therefore a disjoint
    // hot-key space, since hot keys are namespaced by subsystem id), so
    // services of different clusters never share a key.
    let mut pool = |catalog: &mut Catalog,
                    deployment: &mut Deployment,
                    rng: &mut StdRng,
                    kind: &str,
                    cluster: u32|
     -> Vec<ServiceId> {
        (0..config.services_per_kind)
            .map(|i| {
                let idx = cluster as usize * config.services_per_kind + i;
                let subsystem =
                    cluster * config.subsystems as u32 + rng.gen_range(0..config.subsystems as u32);
                let svc = match kind {
                    "c" => catalog.compensatable(format!("c{idx}")).0,
                    "p" => catalog.pivot(format!("p{idx}")),
                    _ => catalog.retriable(format!("r{idx}")),
                };
                let writes = kind != "r" || rng.gen_bool(0.5);
                let program = make_program(rng, subsystem, writes);
                let duration = 1 + rng.gen_range(0..config.mean_duration.max(1) * 2);
                deployment.place_with_duration(svc, SubsystemId(subsystem), program, duration);
                svc
            })
            .collect()
    };

    let clusters = config.clusters.max(1);
    #[allow(clippy::type_complexity)]
    let cluster_pools: Vec<(Vec<ServiceId>, Vec<ServiceId>, Vec<ServiceId>)> = (0..clusters)
        .map(|k| {
            let comp = pool(&mut catalog, &mut deployment, &mut rng, "c", k as u32);
            let pivot = pool(&mut catalog, &mut deployment, &mut rng, "p", k as u32);
            let retriable = pool(&mut catalog, &mut deployment, &mut rng, "r", k as u32);
            (comp, pivot, retriable)
        })
        .collect();

    // Declare the conflict matrix from the physical programs (sound and
    // complete with respect to the deployment), then close it under perfect
    // commutativity (the matrix stores base services only).
    let mut conflicts = ConflictMatrix::new(&catalog);
    let sites: Vec<(ServiceId, Program)> = deployment
        .services()
        .map(|(s, site)| (s, site.program.clone()))
        .collect();
    for (i, (sa, pa)) in sites.iter().enumerate() {
        for (sb, pb) in &sites[i..] {
            if pa.conflicts_with(pb) {
                conflicts
                    .declare_conflict(&catalog, *sa, *sb)
                    .expect("services registered");
            }
        }
    }

    let mut spec = Spec::new(catalog, conflicts);
    for p in 0..config.processes {
        let pid = ProcessId(p as u32);
        let mut builder = ProcessBuilder::new(pid, format!("W{p}"));
        let (comp_pool, pivot_pool, retriable_pool) = &cluster_pools[p % clusters];
        build_segment(
            &mut builder,
            &mut rng,
            config,
            comp_pool,
            pivot_pool,
            retriable_pool,
            None,
            config.max_depth,
        );
        let process = builder
            .build(&spec.catalog)
            .expect("generated process is structurally valid");
        debug_assert!(
            FlexAnalysis::analyze(&process, &spec.catalog).has_guaranteed_termination(),
            "generator must emit guaranteed-termination processes"
        );
        spec.add_process(process);
    }

    Workload {
        spec,
        deployment,
        config: config.clone(),
    }
}

/// Builds `comp* [pivot tail]` starting after `attach`; returns the first
/// activity of the segment.
#[allow(clippy::too_many_arguments)]
fn build_segment(
    b: &mut ProcessBuilder,
    rng: &mut StdRng,
    config: &WorkloadConfig,
    comp_pool: &[ServiceId],
    pivot_pool: &[ServiceId],
    retriable_pool: &[ServiceId],
    attach: Option<txproc_core::ids::ActivityId>,
    depth: usize,
) -> txproc_core::ids::ActivityId {
    let pick = |rng: &mut StdRng, pool: &[ServiceId]| pool[rng.gen_range(0..pool.len())];
    let prefix = rng
        .gen_range(config.prefix_len.0..=config.prefix_len.1)
        .max(1);
    let mut prev = attach;
    let mut first = None;
    for i in 0..prefix {
        let a = b.activity(format!("c{i}"), pick(rng, comp_pool));
        if let Some(p) = prev {
            b.precede(p, a);
        }
        first.get_or_insert(a);
        prev = Some(a);
    }
    // Pivot.
    let pivot = b.activity("p", pick(rng, pivot_pool));
    if let Some(p) = prev {
        b.precede(p, pivot);
    }
    first.get_or_insert(pivot);
    // Tail: either a plain retriable tail, or a recursive preferred branch
    // with an all-retriable fallback.
    let recurse = depth > 0 && rng.gen_bool(config.alternative_probability);
    let tail_first = build_retriable_tail(b, rng, config, retriable_pool, None);
    if recurse {
        let preferred = build_segment(
            b,
            rng,
            config,
            comp_pool,
            pivot_pool,
            retriable_pool,
            None,
            depth - 1,
        );
        b.precede(pivot, preferred);
        b.precede(pivot, tail_first);
        b.prefer(pivot, preferred, tail_first);
    } else {
        b.precede(pivot, tail_first);
    }
    first.expect("segment has at least the pivot")
}

/// Builds a retriable chain; returns its first activity.
fn build_retriable_tail(
    b: &mut ProcessBuilder,
    rng: &mut StdRng,
    config: &WorkloadConfig,
    retriable_pool: &[ServiceId],
    attach: Option<txproc_core::ids::ActivityId>,
) -> txproc_core::ids::ActivityId {
    let pick = |rng: &mut StdRng, pool: &[ServiceId]| pool[rng.gen_range(0..pool.len())];
    let len = rng.gen_range(config.tail_len.0..=config.tail_len.1).max(1);
    let mut prev = attach;
    let mut first = None;
    for i in 0..len {
        let a = b.activity(format!("r{i}"), pick(rng, retriable_pool));
        if let Some(p) = prev {
            b.precede(p, a);
        }
        first.get_or_insert(a);
        prev = Some(a);
    }
    first.expect("tail non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        let w1 = generate(&cfg);
        let w2 = generate(&cfg);
        assert_eq!(w1.spec.process_count(), w2.spec.process_count());
        let p1: Vec<String> = w1.spec.processes().map(|p| format!("{p:?}")).collect();
        let p2: Vec<String> = w2.spec.processes().map(|p| format!("{p:?}")).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = generate(&WorkloadConfig::default());
        let w2 = generate(&WorkloadConfig {
            seed: 43,
            ..WorkloadConfig::default()
        });
        let p1: Vec<String> = w1.spec.processes().map(|p| format!("{p:?}")).collect();
        let p2: Vec<String> = w2.spec.processes().map(|p| format!("{p:?}")).collect();
        assert_ne!(p1, p2);
    }

    #[test]
    fn all_processes_have_guaranteed_termination() {
        for seed in 0..10 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 12,
                ..WorkloadConfig::default()
            });
            for p in w.spec.processes() {
                let a = FlexAnalysis::analyze(p, &w.spec.catalog);
                assert!(
                    a.has_guaranteed_termination(),
                    "seed {seed}, process {}: {:?}",
                    p.name,
                    a.guaranteed_termination
                );
            }
        }
    }

    #[test]
    fn conflict_matrix_covers_physical_conflicts() {
        for seed in 0..5 {
            let w = generate(&WorkloadConfig {
                seed,
                conflict_density: 0.8,
                ..WorkloadConfig::default()
            });
            let missing = w
                .deployment
                .validate_conflicts(&w.spec.catalog, &w.spec.conflicts);
            assert!(missing.is_empty(), "seed {seed}: {missing:?}");
        }
    }

    #[test]
    fn every_activity_has_a_deployed_service() {
        let w = generate(&WorkloadConfig::default());
        for p in w.spec.processes() {
            for (id, _) in p.iter() {
                let svc = p.service(id);
                assert!(w.deployment.site(svc).is_some());
            }
        }
    }

    #[test]
    fn zero_density_generates_no_hot_conflicts_across_processes() {
        let w = generate(&WorkloadConfig {
            conflict_density: 0.0,
            ..WorkloadConfig::default()
        });
        // With all-cold keys, distinct services never share keys; only
        // self-conflicts (same service reused) remain possible.
        let sites: Vec<_> = w.deployment.services().collect();
        for (i, (sa, a)) in sites.iter().enumerate() {
            for (sb, b) in &sites[i + 1..] {
                assert!(
                    !a.program.conflicts_with(&b.program),
                    "{sa} vs {sb} share keys despite zero density"
                );
            }
        }
    }

    #[test]
    fn clusters_partition_the_conflict_graph() {
        use txproc_core::domains::DomainPartition;
        for seed in 0..3 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 32,
                clusters: 4,
                conflict_density: 0.9,
                ..WorkloadConfig::default()
            });
            // Even at extreme density, clusters never share keys: the
            // potential-conflict graph has at least `clusters` components,
            // and no component mixes processes of different clusters.
            let part = DomainPartition::partition(&w.spec);
            assert!(part.domain_count() >= 4, "seed {seed}");
            for members in part.domains() {
                let cluster = members[0].0 % 4;
                for &pid in members {
                    assert_eq!(pid.0 % 4, cluster, "seed {seed}: mixed-cluster domain");
                }
            }
        }
    }

    #[test]
    fn single_cluster_reproduces_classic_workload() {
        // `clusters: 1` must be bit-identical to the pre-cluster generator:
        // same processes, same conflict matrix, same deployment shape.
        let w = generate(&WorkloadConfig::default());
        assert_eq!(w.config.clusters, 1);
        let procs: Vec<String> = w.spec.processes().map(|p| format!("{p:?}")).collect();
        let again = generate(&WorkloadConfig {
            clusters: 1,
            ..WorkloadConfig::default()
        });
        let procs2: Vec<String> = again.spec.processes().map(|p| format!("{p:?}")).collect();
        assert_eq!(procs, procs2);
        assert_eq!(
            w.spec.conflicts.declared_pairs(),
            again.spec.conflicts.declared_pairs()
        );
    }

    #[test]
    fn subsystem_count_respected() {
        let w = generate(&WorkloadConfig {
            subsystems: 2,
            ..WorkloadConfig::default()
        });
        for sid in w.deployment.subsystems() {
            assert!(sid.0 < 2);
        }
    }
}
