//! Synthetic workload generation: random processes with guaranteed
//! termination, deployed over simulated subsystems, with a tunable conflict
//! structure.
//!
//! The generator produces *strictly well-formed flex* processes
//! (`comp* pivot tail`, recursively, with all-retriable fallback branches —
//! \[ZNBB94\], §3.1), assigns every activity a service drawn from per-kind
//! service pools, gives each service a physical program over hot (shared)
//! and cold (private) keys, and declares the conflict matrix from the
//! physical programs (plus perfect-commutativity closure). `conflict_density`
//! steers how often services touch hot keys and therefore how often
//! processes actually conflict.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use txproc_core::activity::Catalog;
use txproc_core::conflict::ConflictMatrix;
use txproc_core::flex::FlexAnalysis;
use txproc_core::ids::{ProcessId, ServiceId};
use txproc_core::process::ProcessBuilder;
use txproc_core::spec::Spec;
use txproc_subsystem::deploy::Deployment;
use txproc_subsystem::kv::{Key, KvOp, Program};
use txproc_subsystem::subsystem::SubsystemId;

/// How processes arrive at the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Closed system: every process is submitted at time zero (the
    /// virtual-time engine may still stagger them via its `arrival_gap`).
    #[default]
    Closed,
    /// Open system: a Poisson arrival process — exponential inter-arrival
    /// gaps with the given mean, in virtual ticks (the wall-clock
    /// concurrent driver maps one tick to one microsecond). Deterministic
    /// in the workload seed.
    Poisson {
        /// Mean inter-arrival gap (virtual ticks; must be ≥ 1).
        mean_gap: u64,
    },
    /// Flash crowd: the first `quiet` processes arrive spaced `quiet_gap`
    /// ticks apart, then every remaining process lands in one burst at the
    /// spike instant.
    Burst {
        /// Processes that arrive before the spike.
        quiet: usize,
        /// Inter-arrival gap of the quiet phase (ticks; must be ≥ 1).
        quiet_gap: u64,
    },
}

/// One tenant in a multi-tenant mix: a relative share of the processes plus
/// optional overrides of the structural knobs. Processes are dealt to
/// tenants by weighted round-robin over the process id, so the assignment
/// is deterministic and independent of every other knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantMix {
    /// Label used in reports.
    pub name: String,
    /// Relative share of processes (≥ 1).
    pub weight: usize,
    /// Override of [`WorkloadConfig::prefix_len`].
    pub prefix_len: Option<(usize, usize)>,
    /// Override of [`WorkloadConfig::tail_len`].
    pub tail_len: Option<(usize, usize)>,
    /// Override of [`WorkloadConfig::alternative_probability`].
    pub alternative_probability: Option<f64>,
    /// Override of [`WorkloadConfig::zipf_s`].
    pub zipf_s: Option<f64>,
}

/// A correlated subsystem crash-storm: during a virtual-time window, every
/// failable activity on the storm subsystems fails with `failure_probability`
/// instead of the base rate — the "half the machine room lost power mid-2PC"
/// shape. The wall-clock concurrent driver has no virtual clock; it applies
/// the storm probability to the storm subsystems for the whole run instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashStorm {
    /// Number of affected subsystems (absolute ids `0..subsystems`).
    pub subsystems: u32,
    /// Virtual-time window `[start, end)` of the storm.
    pub window: (u64, u64),
    /// Failure probability on storm subsystems during the window.
    pub failure_probability: f64,
}

/// Configuration of a synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed: equal seeds produce equal workloads.
    pub seed: u64,
    /// Number of processes.
    pub processes: usize,
    /// Compensatable-prefix length range (inclusive).
    pub prefix_len: (usize, usize),
    /// Retriable-tail length range (inclusive).
    pub tail_len: (usize, usize),
    /// Probability that a pivot carries an alternative branch (recursion).
    pub alternative_probability: f64,
    /// Maximum nesting depth of alternatives.
    pub max_depth: usize,
    /// Size of each service pool (compensatable / pivot / retriable).
    pub services_per_kind: usize,
    /// Number of subsystems services are spread over.
    pub subsystems: usize,
    /// Number of hot (shared) keys per subsystem.
    pub hot_keys: u64,
    /// Number of independent service clusters (tenants). Each cluster gets
    /// its own service pools and its own subsystems (and therefore its own
    /// hot-key space); process `p` draws services only from cluster
    /// `p % clusters`. Clusters never share keys, so `conflict_density`
    /// steers *intra*-cluster contention while the potential-conflict graph
    /// decomposes into at least `clusters` independent parts — the
    /// multi-tenant shape the conflict-domain sharded driver exploits.
    /// `1` (the default) reproduces the classic single-pool workload
    /// bit-for-bit.
    pub clusters: usize,
    /// Probability that a service operation touches a hot key.
    pub conflict_density: f64,
    /// Probability that a failable activity fails at runtime.
    pub failure_probability: f64,
    /// Mean service duration (virtual time units).
    pub mean_duration: u64,
    /// Zipf skew of service popularity within each pool: activity `pick`s
    /// draw pool rank `r` with probability ∝ 1/(r+1)^s. `0.0` (the default)
    /// is bit-identical to the classic uniform pick.
    #[serde(default)]
    pub zipf_s: f64,
    /// Arrival model. [`ArrivalModel::Closed`] (the default) reproduces the
    /// classic all-at-time-zero submission.
    #[serde(default)]
    pub arrivals: ArrivalModel,
    /// Multi-tenant mix. Empty (the default) means one implicit tenant with
    /// the base knobs; otherwise process `p` belongs to
    /// [`tenant_of`]`(config, p)` and uses that tenant's overrides.
    #[serde(default)]
    pub tenants: Vec<TenantMix>,
    /// Correlated subsystem crash-storm (none by default).
    #[serde(default)]
    pub storm: Option<CrashStorm>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            processes: 8,
            prefix_len: (1, 3),
            tail_len: (1, 2),
            alternative_probability: 0.4,
            max_depth: 2,
            services_per_kind: 16,
            subsystems: 3,
            hot_keys: 4,
            clusters: 1,
            conflict_density: 0.3,
            failure_probability: 0.1,
            mean_duration: 10,
            zipf_s: 0.0,
            arrivals: ArrivalModel::Closed,
            tenants: Vec::new(),
            storm: None,
        }
    }
}

/// A rejected [`WorkloadConfig`]: which knob is invalid and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError(pub String);

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload config: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

fn unit_interval(name: &str, v: f64) -> Result<(), WorkloadError> {
    if !(0.0..=1.0).contains(&v) {
        return Err(WorkloadError(format!("{name} must be in [0, 1], got {v}")));
    }
    Ok(())
}

impl WorkloadConfig {
    /// Validates every knob. [`generate`] panics on an invalid config;
    /// [`try_generate`] surfaces the error instead.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let err = |msg: String| Err(WorkloadError(msg));
        if self.processes == 0 {
            return err("processes must be >= 1".into());
        }
        if self.clusters == 0 {
            return err("clusters must be >= 1 (0 is not \"one pool\")".into());
        }
        if self.clusters > self.processes {
            return err(format!(
                "clusters ({}) must not exceed processes ({}): empty clusters would \
                 silently inflate the service catalog and the domain count",
                self.clusters, self.processes
            ));
        }
        if self.services_per_kind == 0 {
            return err("services_per_kind must be >= 1".into());
        }
        if self.subsystems == 0 {
            return err("subsystems must be >= 1".into());
        }
        if self.hot_keys == 0 && self.conflict_density > 0.0 {
            return err("hot_keys must be >= 1 when conflict_density > 0".into());
        }
        if self.prefix_len.0 > self.prefix_len.1 {
            return err(format!("prefix_len range is empty: {:?}", self.prefix_len));
        }
        if self.tail_len.0 > self.tail_len.1 {
            return err(format!("tail_len range is empty: {:?}", self.tail_len));
        }
        unit_interval("conflict_density", self.conflict_density)?;
        unit_interval("failure_probability", self.failure_probability)?;
        unit_interval("alternative_probability", self.alternative_probability)?;
        if !self.zipf_s.is_finite() || self.zipf_s < 0.0 {
            return err(format!(
                "zipf_s must be finite and >= 0, got {}",
                self.zipf_s
            ));
        }
        match self.arrivals {
            ArrivalModel::Closed => {}
            ArrivalModel::Poisson { mean_gap } => {
                if mean_gap == 0 {
                    return err("Poisson mean_gap must be >= 1".into());
                }
            }
            ArrivalModel::Burst { quiet, quiet_gap } => {
                if quiet_gap == 0 {
                    return err("Burst quiet_gap must be >= 1".into());
                }
                if quiet > self.processes {
                    return err(format!(
                        "Burst quiet ({quiet}) exceeds processes ({})",
                        self.processes
                    ));
                }
            }
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return err(format!("tenant {i} ({}) has weight 0", t.name));
            }
            if let Some((lo, hi)) = t.prefix_len {
                if lo > hi {
                    return err(format!(
                        "tenant {i} prefix_len range is empty: ({lo}, {hi})"
                    ));
                }
            }
            if let Some((lo, hi)) = t.tail_len {
                if lo > hi {
                    return err(format!("tenant {i} tail_len range is empty: ({lo}, {hi})"));
                }
            }
            if let Some(p) = t.alternative_probability {
                unit_interval("tenant alternative_probability", p)?;
            }
            if let Some(s) = t.zipf_s {
                if !s.is_finite() || s < 0.0 {
                    return err(format!(
                        "tenant {i} zipf_s must be finite and >= 0, got {s}"
                    ));
                }
            }
        }
        if let Some(storm) = &self.storm {
            if storm.subsystems == 0 {
                return err("storm.subsystems must be >= 1".into());
            }
            if storm.window.0 >= storm.window.1 {
                return err(format!("storm.window is empty: {:?}", storm.window));
            }
            unit_interval("storm.failure_probability", storm.failure_probability)?;
        }
        Ok(())
    }
}

/// Tenant index of process `p` under `config` (0 when no mix is declared):
/// weighted round-robin over the process id.
pub fn tenant_of(config: &WorkloadConfig, p: usize) -> usize {
    if config.tenants.is_empty() {
        return 0;
    }
    let cycle: usize = config.tenants.iter().map(|t| t.weight).sum();
    let mut pos = p % cycle.max(1);
    for (i, t) in config.tenants.iter().enumerate() {
        if pos < t.weight {
            return i;
        }
        pos -= t.weight;
    }
    config.tenants.len() - 1
}

/// Arrival time (virtual ticks) of every process under the config's
/// [`ArrivalModel`]. Deterministic in the seed; `Closed` is all zeros.
pub fn arrival_times(config: &WorkloadConfig) -> Vec<u64> {
    let n = config.processes;
    match config.arrivals {
        ArrivalModel::Closed => vec![0; n],
        ArrivalModel::Poisson { mean_gap } => {
            // A dedicated RNG stream (not the generator's) so arrival draws
            // never perturb the workload structure.
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xa11a_17e5_0f00_ba55);
            let mut at = 0u64;
            (0..n)
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    // Inverse-CDF exponential sample, floored at 0 ticks.
                    let gap = (-(1.0 - u).ln() * mean_gap as f64).round() as u64;
                    at += gap;
                    at
                })
                .collect()
        }
        ArrivalModel::Burst { quiet, quiet_gap } => {
            let spike_at = quiet as u64 * quiet_gap;
            (0..n)
                .map(|p| {
                    if p < quiet {
                        p as u64 * quiet_gap
                    } else {
                        spike_at
                    }
                })
                .collect()
        }
    }
}

/// Zipf(s) sample over ranks `0..n`: rank `r` with probability ∝ 1/(r+1)^s.
/// `s == 0.0` delegates to the uniform `gen_range` draw — same RNG
/// consumption, bit-identical stream.
pub fn zipf_sample(rng: &mut StdRng, n: usize, s: f64) -> usize {
    assert!(n > 0, "cannot sample from an empty pool");
    if s == 0.0 {
        return rng.gen_range(0..n);
    }
    // n is a pool size (tens), so the linear CDF walk beats building and
    // binary-searching a cached table.
    let total: f64 = (0..n).map(|r| ((r + 1) as f64).powf(-s)).sum();
    let mut u = rng.gen_range(0.0..1.0) * total;
    for r in 0..n {
        u -= ((r + 1) as f64).powf(-s);
        if u < 0.0 {
            return r;
        }
    }
    n - 1
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Catalog + conflicts + processes.
    pub spec: Spec,
    /// Physical placement and programs.
    pub deployment: Deployment,
    /// The configuration that produced it.
    pub config: WorkloadConfig,
}

/// Generates a workload from a configuration, or reports why the
/// configuration is invalid. Deterministic in `seed`.
pub fn try_generate(config: &WorkloadConfig) -> Result<Workload, WorkloadError> {
    config.validate()?;
    Ok(generate_unchecked(config))
}

/// Generates a workload from a configuration. Deterministic in `seed`.
///
/// # Panics
/// On an invalid configuration (see [`WorkloadConfig::validate`]); use
/// [`try_generate`] to handle the error instead.
pub fn generate(config: &WorkloadConfig) -> Workload {
    match try_generate(config) {
        Ok(w) => w,
        Err(e) => panic!("{e}"),
    }
}

/// Per-process view of the knobs: the base config with the process's tenant
/// overrides applied.
fn effective_config(config: &WorkloadConfig, p: usize) -> WorkloadConfig {
    let mut eff = config.clone();
    if config.tenants.is_empty() {
        return eff;
    }
    let t = &config.tenants[tenant_of(config, p)];
    if let Some(v) = t.prefix_len {
        eff.prefix_len = v;
    }
    if let Some(v) = t.tail_len {
        eff.tail_len = v;
    }
    if let Some(v) = t.alternative_probability {
        eff.alternative_probability = v;
    }
    if let Some(v) = t.zipf_s {
        eff.zipf_s = v;
    }
    eff
}

fn generate_unchecked(config: &WorkloadConfig) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut catalog = Catalog::new();
    let mut deployment = Deployment::new();

    let mut next_cold_key: u64 = 1_000_000;
    let mut make_program = |rng: &mut StdRng, subsystem: u32, writes: bool| -> Program {
        let ops = rng.gen_range(1..=3);
        let mut program = Program::empty();
        for _ in 0..ops {
            let key = if rng.gen_bool(config.conflict_density) {
                // Hot key within the subsystem's shared pool.
                Key(u64::from(subsystem) * 10_000 + rng.gen_range(0..config.hot_keys))
            } else {
                next_cold_key += 1;
                Key(next_cold_key)
            };
            let op = if !writes {
                KvOp::Read(key)
            } else {
                // Mostly commuting increments: two invocations of the same
                // service then conflict only through reads/overwrites, so
                // `conflict_density` (hot-key sharing) stays the dominant
                // contention knob.
                match rng.gen_range(0..10) {
                    0..=5 => KvOp::Add(key, rng.gen_range(1..100)),
                    6 => KvOp::Set(key, rng.gen_range(1..100)),
                    _ => KvOp::Read(key),
                }
            };
            program = program.then(op);
        }
        program
    };

    // Each cluster owns disjoint subsystems (and therefore a disjoint
    // hot-key space, since hot keys are namespaced by subsystem id), so
    // services of different clusters never share a key.
    let mut pool = |catalog: &mut Catalog,
                    deployment: &mut Deployment,
                    rng: &mut StdRng,
                    kind: &str,
                    cluster: u32|
     -> Vec<ServiceId> {
        (0..config.services_per_kind)
            .map(|i| {
                let idx = cluster as usize * config.services_per_kind + i;
                let subsystem =
                    cluster * config.subsystems as u32 + rng.gen_range(0..config.subsystems as u32);
                let svc = match kind {
                    "c" => catalog.compensatable(format!("c{idx}")).0,
                    "p" => catalog.pivot(format!("p{idx}")),
                    _ => catalog.retriable(format!("r{idx}")),
                };
                let writes = kind != "r" || rng.gen_bool(0.5);
                let program = make_program(rng, subsystem, writes);
                let duration = 1 + rng.gen_range(0..config.mean_duration.max(1) * 2);
                deployment.place_with_duration(svc, SubsystemId(subsystem), program, duration);
                svc
            })
            .collect()
    };

    let clusters = config.clusters;
    #[allow(clippy::type_complexity)]
    let cluster_pools: Vec<(Vec<ServiceId>, Vec<ServiceId>, Vec<ServiceId>)> = (0..clusters)
        .map(|k| {
            let comp = pool(&mut catalog, &mut deployment, &mut rng, "c", k as u32);
            let pivot = pool(&mut catalog, &mut deployment, &mut rng, "p", k as u32);
            let retriable = pool(&mut catalog, &mut deployment, &mut rng, "r", k as u32);
            (comp, pivot, retriable)
        })
        .collect();

    // Declare the conflict matrix from the physical programs (sound and
    // complete with respect to the deployment), then close it under perfect
    // commutativity (the matrix stores base services only).
    let mut conflicts = ConflictMatrix::new(&catalog);
    let sites: Vec<(ServiceId, Program)> = deployment
        .services()
        .map(|(s, site)| (s, site.program.clone()))
        .collect();
    for (i, (sa, pa)) in sites.iter().enumerate() {
        for (sb, pb) in &sites[i..] {
            if pa.conflicts_with(pb) {
                conflicts
                    .declare_conflict(&catalog, *sa, *sb)
                    .expect("services registered");
            }
        }
    }

    let mut spec = Spec::new(catalog, conflicts);
    for p in 0..config.processes {
        let pid = ProcessId(p as u32);
        let mut builder = ProcessBuilder::new(pid, format!("W{p}"));
        let (comp_pool, pivot_pool, retriable_pool) = &cluster_pools[p % clusters];
        let eff = effective_config(config, p);
        build_segment(
            &mut builder,
            &mut rng,
            &eff,
            comp_pool,
            pivot_pool,
            retriable_pool,
            None,
            config.max_depth,
        );
        let process = builder
            .build(&spec.catalog)
            .expect("generated process is structurally valid");
        debug_assert!(
            FlexAnalysis::analyze(&process, &spec.catalog).has_guaranteed_termination(),
            "generator must emit guaranteed-termination processes"
        );
        spec.add_process(process);
    }

    Workload {
        spec,
        deployment,
        config: config.clone(),
    }
}

/// Builds `comp* [pivot tail]` starting after `attach`; returns the first
/// activity of the segment.
#[allow(clippy::too_many_arguments)]
fn build_segment(
    b: &mut ProcessBuilder,
    rng: &mut StdRng,
    config: &WorkloadConfig,
    comp_pool: &[ServiceId],
    pivot_pool: &[ServiceId],
    retriable_pool: &[ServiceId],
    attach: Option<txproc_core::ids::ActivityId>,
    depth: usize,
) -> txproc_core::ids::ActivityId {
    let pick =
        |rng: &mut StdRng, pool: &[ServiceId]| pool[zipf_sample(rng, pool.len(), config.zipf_s)];
    let prefix = rng
        .gen_range(config.prefix_len.0..=config.prefix_len.1)
        .max(1);
    let mut prev = attach;
    let mut first = None;
    for i in 0..prefix {
        let a = b.activity(format!("c{i}"), pick(rng, comp_pool));
        if let Some(p) = prev {
            b.precede(p, a);
        }
        first.get_or_insert(a);
        prev = Some(a);
    }
    // Pivot.
    let pivot = b.activity("p", pick(rng, pivot_pool));
    if let Some(p) = prev {
        b.precede(p, pivot);
    }
    first.get_or_insert(pivot);
    // Tail: either a plain retriable tail, or a recursive preferred branch
    // with an all-retriable fallback.
    let recurse = depth > 0 && rng.gen_bool(config.alternative_probability);
    let tail_first = build_retriable_tail(b, rng, config, retriable_pool, None);
    if recurse {
        let preferred = build_segment(
            b,
            rng,
            config,
            comp_pool,
            pivot_pool,
            retriable_pool,
            None,
            depth - 1,
        );
        b.precede(pivot, preferred);
        b.precede(pivot, tail_first);
        b.prefer(pivot, preferred, tail_first);
    } else {
        b.precede(pivot, tail_first);
    }
    first.expect("segment has at least the pivot")
}

/// Builds a retriable chain; returns its first activity.
fn build_retriable_tail(
    b: &mut ProcessBuilder,
    rng: &mut StdRng,
    config: &WorkloadConfig,
    retriable_pool: &[ServiceId],
    attach: Option<txproc_core::ids::ActivityId>,
) -> txproc_core::ids::ActivityId {
    let pick =
        |rng: &mut StdRng, pool: &[ServiceId]| pool[zipf_sample(rng, pool.len(), config.zipf_s)];
    let len = rng.gen_range(config.tail_len.0..=config.tail_len.1).max(1);
    let mut prev = attach;
    let mut first = None;
    for i in 0..len {
        let a = b.activity(format!("r{i}"), pick(rng, retriable_pool));
        if let Some(p) = prev {
            b.precede(p, a);
        }
        first.get_or_insert(a);
        prev = Some(a);
    }
    first.expect("tail non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::default();
        let w1 = generate(&cfg);
        let w2 = generate(&cfg);
        assert_eq!(w1.spec.process_count(), w2.spec.process_count());
        let p1: Vec<String> = w1.spec.processes().map(|p| format!("{p:?}")).collect();
        let p2: Vec<String> = w2.spec.processes().map(|p| format!("{p:?}")).collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_seeds_differ() {
        let w1 = generate(&WorkloadConfig::default());
        let w2 = generate(&WorkloadConfig {
            seed: 43,
            ..WorkloadConfig::default()
        });
        let p1: Vec<String> = w1.spec.processes().map(|p| format!("{p:?}")).collect();
        let p2: Vec<String> = w2.spec.processes().map(|p| format!("{p:?}")).collect();
        assert_ne!(p1, p2);
    }

    #[test]
    fn all_processes_have_guaranteed_termination() {
        for seed in 0..10 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 12,
                ..WorkloadConfig::default()
            });
            for p in w.spec.processes() {
                let a = FlexAnalysis::analyze(p, &w.spec.catalog);
                assert!(
                    a.has_guaranteed_termination(),
                    "seed {seed}, process {}: {:?}",
                    p.name,
                    a.guaranteed_termination
                );
            }
        }
    }

    #[test]
    fn conflict_matrix_covers_physical_conflicts() {
        for seed in 0..5 {
            let w = generate(&WorkloadConfig {
                seed,
                conflict_density: 0.8,
                ..WorkloadConfig::default()
            });
            let missing = w
                .deployment
                .validate_conflicts(&w.spec.catalog, &w.spec.conflicts);
            assert!(missing.is_empty(), "seed {seed}: {missing:?}");
        }
    }

    #[test]
    fn every_activity_has_a_deployed_service() {
        let w = generate(&WorkloadConfig::default());
        for p in w.spec.processes() {
            for (id, _) in p.iter() {
                let svc = p.service(id);
                assert!(w.deployment.site(svc).is_some());
            }
        }
    }

    #[test]
    fn zero_density_generates_no_hot_conflicts_across_processes() {
        let w = generate(&WorkloadConfig {
            conflict_density: 0.0,
            ..WorkloadConfig::default()
        });
        // With all-cold keys, distinct services never share keys; only
        // self-conflicts (same service reused) remain possible.
        let sites: Vec<_> = w.deployment.services().collect();
        for (i, (sa, a)) in sites.iter().enumerate() {
            for (sb, b) in &sites[i + 1..] {
                assert!(
                    !a.program.conflicts_with(&b.program),
                    "{sa} vs {sb} share keys despite zero density"
                );
            }
        }
    }

    #[test]
    fn clusters_partition_the_conflict_graph() {
        use txproc_core::domains::DomainPartition;
        for seed in 0..3 {
            let w = generate(&WorkloadConfig {
                seed,
                processes: 32,
                clusters: 4,
                conflict_density: 0.9,
                ..WorkloadConfig::default()
            });
            // Even at extreme density, clusters never share keys: the
            // potential-conflict graph has at least `clusters` components,
            // and no component mixes processes of different clusters.
            let part = DomainPartition::partition(&w.spec);
            assert!(part.domain_count() >= 4, "seed {seed}");
            for members in part.domains() {
                let cluster = members[0].0 % 4;
                for &pid in members {
                    assert_eq!(pid.0 % 4, cluster, "seed {seed}: mixed-cluster domain");
                }
            }
        }
    }

    #[test]
    fn single_cluster_reproduces_classic_workload() {
        // `clusters: 1` must be bit-identical to the pre-cluster generator:
        // same processes, same conflict matrix, same deployment shape.
        let w = generate(&WorkloadConfig::default());
        assert_eq!(w.config.clusters, 1);
        let procs: Vec<String> = w.spec.processes().map(|p| format!("{p:?}")).collect();
        let again = generate(&WorkloadConfig {
            clusters: 1,
            ..WorkloadConfig::default()
        });
        let procs2: Vec<String> = again.spec.processes().map(|p| format!("{p:?}")).collect();
        assert_eq!(procs, procs2);
        assert_eq!(
            w.spec.conflicts.declared_pairs(),
            again.spec.conflicts.declared_pairs()
        );
    }

    #[test]
    fn invalid_configs_are_rejected_not_collapsed() {
        let bad = [
            WorkloadConfig {
                clusters: 0,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                clusters: 9,
                processes: 8,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                processes: 0,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                services_per_kind: 0,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                subsystems: 0,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                hot_keys: 0,
                conflict_density: 0.5,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                prefix_len: (3, 1),
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                failure_probability: 1.5,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                zipf_s: f64::NAN,
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                arrivals: ArrivalModel::Poisson { mean_gap: 0 },
                ..WorkloadConfig::default()
            },
            WorkloadConfig {
                storm: Some(CrashStorm {
                    subsystems: 1,
                    window: (10, 10),
                    failure_probability: 0.5,
                }),
                ..WorkloadConfig::default()
            },
        ];
        for cfg in bad {
            assert!(
                try_generate(&cfg).is_err(),
                "accepted invalid config: {cfg:?}"
            );
        }
        // hot_keys = 0 is fine when nothing ever touches a hot key.
        assert!(try_generate(&WorkloadConfig {
            hot_keys: 0,
            conflict_density: 0.0,
            ..WorkloadConfig::default()
        })
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid workload config")]
    fn generate_panics_on_invalid_config() {
        generate(&WorkloadConfig {
            clusters: 0,
            ..WorkloadConfig::default()
        });
    }

    #[test]
    fn zipf_zero_matches_uniform_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..2000 {
            assert_eq!(zipf_sample(&mut a, 17, 0.0), b.gen_range(0..17));
        }
    }

    #[test]
    fn zipf_skew_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 16];
        for _ in 0..20_000 {
            counts[zipf_sample(&mut rng, 16, 1.5)] += 1;
        }
        assert!(counts[0] > counts[1], "{counts:?}");
        assert!(counts[1] > counts[4], "{counts:?}");
        // Rank 0 should dominate: > 40% of the mass at s = 1.5, n = 16.
        assert!(counts[0] > 8_000, "{counts:?}");
    }

    #[test]
    fn arrival_models_are_deterministic_and_shaped() {
        let closed = WorkloadConfig::default();
        assert_eq!(arrival_times(&closed), vec![0; 8]);

        let poisson = WorkloadConfig {
            arrivals: ArrivalModel::Poisson { mean_gap: 25 },
            processes: 64,
            ..WorkloadConfig::default()
        };
        let a1 = arrival_times(&poisson);
        let a2 = arrival_times(&poisson);
        assert_eq!(a1, a2);
        assert!(a1.windows(2).all(|w| w[0] <= w[1]), "non-monotone arrivals");
        let mean_gap = *a1.last().unwrap() as f64 / (a1.len() - 1) as f64;
        assert!(
            (5.0..125.0).contains(&mean_gap),
            "mean inter-arrival gap way off: {mean_gap}"
        );

        let burst = WorkloadConfig {
            arrivals: ArrivalModel::Burst {
                quiet: 3,
                quiet_gap: 50,
            },
            processes: 8,
            ..WorkloadConfig::default()
        };
        assert_eq!(
            arrival_times(&burst),
            vec![0, 50, 100, 150, 150, 150, 150, 150]
        );
    }

    #[test]
    fn tenants_deal_processes_by_weight() {
        let cfg = WorkloadConfig {
            tenants: vec![
                TenantMix {
                    name: "heavy".into(),
                    weight: 1,
                    prefix_len: Some((6, 8)),
                    tail_len: None,
                    alternative_probability: None,
                    zipf_s: None,
                },
                TenantMix {
                    name: "light".into(),
                    weight: 3,
                    prefix_len: None,
                    tail_len: None,
                    alternative_probability: None,
                    zipf_s: None,
                },
            ],
            ..WorkloadConfig::default()
        };
        let assigned: Vec<usize> = (0..8).map(|p| tenant_of(&cfg, p)).collect();
        assert_eq!(assigned, vec![0, 1, 1, 1, 0, 1, 1, 1]);
        // Heavy-tenant processes (prefix >= 6 compensatable steps before the
        // pivot) must be visibly longer than light ones (prefix <= 3).
        let w = generate(&cfg);
        let sizes: Vec<usize> = w.spec.processes().map(|p| p.iter().count()).collect();
        for (p, &size) in sizes.iter().enumerate() {
            if tenant_of(&cfg, p) == 0 {
                assert!(size >= 8, "heavy process {p} too small: {size}");
            }
        }
    }

    #[test]
    fn no_tenants_is_bit_identical_to_base_config() {
        let base = generate(&WorkloadConfig::default());
        let with_empty = generate(&WorkloadConfig {
            tenants: Vec::new(),
            zipf_s: 0.0,
            ..WorkloadConfig::default()
        });
        let p1: Vec<String> = base.spec.processes().map(|p| format!("{p:?}")).collect();
        let p2: Vec<String> = with_empty
            .spec
            .processes()
            .map(|p| format!("{p:?}"))
            .collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn subsystem_count_respected() {
        let w = generate(&WorkloadConfig {
            subsystems: 2,
            ..WorkloadConfig::default()
        });
        for sid in w.deployment.subsystems() {
            assert!(sid.0 < 2);
        }
    }
}
