//! Named adversarial scenarios with machine-checked acceptance envelopes.
//!
//! A [`Scenario`] is a [`WorkloadConfig`] shape (the seed varies per run)
//! plus an [`Envelope`]: the commit-rate floor, virtual-latency ceiling and
//! structural guards a correct scheduler must satisfy on that shape. One
//! definition serves two harnesses — the benchmark reports scenario entries
//! (`BENCH_scheduler.json` schema v4) and the correctness gauntlet
//! (`txproc gauntlet`, `scenario_gauntlet.rs`) replays every scenario over
//! many seeds through the batch PRED and Proc-REC checkers.

use crate::metrics::Metrics;
use crate::workload::{ArrivalModel, CrashStorm, TenantMix, WorkloadConfig};
use serde::{Deserialize, Serialize};

/// Acceptance envelope of a scenario: the floor/ceiling bounds a run's
/// [`Metrics`] must satisfy. PRED / Proc-REC violations are always
/// unacceptable; the remaining knobs are scenario-specific.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Commit-rate floor: `committed / processes` must be at least this.
    pub min_commit_rate: f64,
    /// Ceiling on the p95 end-to-end latency in *virtual ticks*. Checked on
    /// virtual-time (engine) runs only — wall-clock p95 depends on the host
    /// machine and would make the gauntlet flaky.
    pub max_p95_virtual: u64,
    /// Floor on compensations executed (asserts the scenario actually
    /// exercises the compensation machinery; 0 disables the guard).
    pub min_compensations: u64,
}

impl Envelope {
    /// Checks a run's metrics against the envelope. `virtual_time` selects
    /// whether the latency ceiling applies (engine runs) or not (wall-clock
    /// concurrent runs). Returns every breach, empty when the run passes.
    pub fn check(&self, m: &Metrics, processes: usize, virtual_time: bool) -> Vec<String> {
        let mut breaches = Vec::new();
        if m.violations > 0 {
            breaches.push(format!("{} correctness violations", m.violations));
        }
        let rate = m.committed as f64 / processes.max(1) as f64;
        if rate < self.min_commit_rate {
            breaches.push(format!(
                "commit rate {rate:.3} below floor {:.3}",
                self.min_commit_rate
            ));
        }
        if virtual_time {
            if let Some(p95) = m.latency_percentile(0.95) {
                if p95 > self.max_p95_virtual {
                    breaches.push(format!(
                        "p95 latency {p95} above ceiling {}",
                        self.max_p95_virtual
                    ));
                }
            }
        }
        if m.compensations < self.min_compensations {
            breaches.push(format!(
                "{} compensations below floor {}",
                m.compensations, self.min_compensations
            ));
        }
        breaches
    }
}

/// A named adversarial workload shape with its acceptance envelope.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Scenario {
    /// Registry key (`zipf-hotspot`, `flash-crowd`, …).
    pub name: &'static str,
    /// One-line description for reports.
    pub summary: &'static str,
    /// The workload shape. `config.seed` is a placeholder — use
    /// [`Scenario::config_for_seed`] per run.
    pub config: WorkloadConfig,
    /// Acceptance bounds.
    pub envelope: Envelope,
}

impl Scenario {
    /// The scenario's config with the run seed substituted.
    pub fn config_for_seed(&self, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            ..self.config.clone()
        }
    }

    /// The scenario's shape with one cluster per process: processes become
    /// pairwise non-conflicting, so sharded and single-lock concurrent
    /// drivers must produce bit-equal commit/abort sets (the shard-mode
    /// determinism oracle). Structure knobs are preserved.
    pub fn disjoint_variant(&self, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            seed,
            clusters: self.config.processes,
            ..self.config.clone()
        }
    }
}

/// All named scenarios, in registry order.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "zipf-hotspot",
            summary: "Zipf-skewed service popularity concentrates load on a \
                      few hot services over a tiny hot-key space",
            config: WorkloadConfig {
                processes: 24,
                services_per_kind: 12,
                subsystems: 3,
                hot_keys: 2,
                zipf_s: 1.5,
                conflict_density: 0.5,
                failure_probability: 0.05,
                ..WorkloadConfig::default()
            },
            // Measured (128 seeds): 0.17 engine / 0.22 concurrent commit
            // rate, engine p95 ≈ 190 ticks. Floors sit at roughly half the
            // worst observed mode so machine variance can't trip them.
            envelope: Envelope {
                min_commit_rate: 0.08,
                max_p95_virtual: 1_000,
                min_compensations: 0,
            },
        },
        Scenario {
            name: "flash-crowd",
            summary: "A quiet warm-up phase followed by every remaining \
                      process arriving in one burst",
            config: WorkloadConfig {
                processes: 32,
                arrivals: ArrivalModel::Burst {
                    quiet: 8,
                    quiet_gap: 40,
                },
                conflict_density: 0.4,
                failure_probability: 0.05,
                ..WorkloadConfig::default()
            },
            // Measured: 0.35 engine / 0.22 concurrent, engine p95 ≈ 120.
            envelope: Envelope {
                min_commit_rate: 0.10,
                max_p95_virtual: 1_000,
                min_compensations: 0,
            },
        },
        Scenario {
            name: "noisy-neighbor",
            summary: "One heavy tenant with long skewed sagas shares the \
                      cluster with three light tenants under Poisson arrivals",
            config: WorkloadConfig {
                processes: 24,
                arrivals: ArrivalModel::Poisson { mean_gap: 20 },
                tenants: vec![
                    TenantMix {
                        name: "heavy".into(),
                        weight: 1,
                        prefix_len: Some((6, 9)),
                        tail_len: Some((2, 3)),
                        alternative_probability: None,
                        zipf_s: Some(1.2),
                    },
                    TenantMix {
                        name: "light".into(),
                        weight: 3,
                        prefix_len: Some((1, 2)),
                        tail_len: Some((1, 1)),
                        alternative_probability: None,
                        zipf_s: None,
                    },
                ],
                conflict_density: 0.4,
                failure_probability: 0.05,
                ..WorkloadConfig::default()
            },
            // Measured: 0.46 engine / 0.27 concurrent, engine p95 ≈ 230.
            envelope: Envelope {
                min_commit_rate: 0.12,
                max_p95_virtual: 1_200,
                min_compensations: 0,
            },
        },
        Scenario {
            name: "long-sagas",
            summary: "Long compensatable chains with late pivots and deep \
                      alternative nesting",
            config: WorkloadConfig {
                processes: 16,
                prefix_len: (10, 16),
                tail_len: (2, 4),
                alternative_probability: 0.5,
                max_depth: 3,
                conflict_density: 0.3,
                // The stress here is structural (chain length, nesting
                // depth): a higher per-activity failure rate over 10-16
                // activities would drive the commit rate below 2% and make
                // the floor meaningless.
                failure_probability: 0.08,
                ..WorkloadConfig::default()
            },
            // Measured (128 seeds): 0.031 engine / 0.029 concurrent.
            envelope: Envelope {
                min_commit_rate: 0.015,
                max_p95_virtual: 1_500,
                min_compensations: 0,
            },
        },
        Scenario {
            name: "comp-heavy",
            summary: "Compensatable-heavy processes under a high failure \
                      rate: the abort path is the common path",
            config: WorkloadConfig {
                processes: 24,
                prefix_len: (5, 8),
                tail_len: (1, 1),
                alternative_probability: 0.2,
                conflict_density: 0.3,
                failure_probability: 0.35,
                ..WorkloadConfig::default()
            },
            // The abort path is the common path by design, so a commit-rate
            // floor would be noise; the envelope instead asserts the
            // compensation machinery actually runs (and, as everywhere,
            // that no PRED / Proc-REC violation appears).
            envelope: Envelope {
                min_commit_rate: 0.0,
                max_p95_virtual: 1_000,
                min_compensations: 10,
            },
        },
        Scenario {
            name: "crash-storm",
            summary: "Two of four subsystems fail almost every activity \
                      during a mid-run window (correlated crash mid-2PC)",
            config: WorkloadConfig {
                processes: 24,
                subsystems: 4,
                storm: Some(CrashStorm {
                    subsystems: 2,
                    window: (50, 250),
                    failure_probability: 0.9,
                }),
                conflict_density: 0.3,
                failure_probability: 0.05,
                ..WorkloadConfig::default()
            },
            // Measured: 0.39 engine / 0.12 concurrent (the storm covers the
            // whole run under wall-clock, so the concurrent rate is lower).
            envelope: Envelope {
                min_commit_rate: 0.05,
                max_p95_virtual: 1_500,
                min_compensations: 1,
            },
        },
    ]
}

/// Looks up a scenario by registry name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::try_generate;

    #[test]
    fn every_scenario_config_is_valid() {
        for s in registry() {
            for seed in [0, 1, 42] {
                try_generate(&s.config_for_seed(seed))
                    .unwrap_or_else(|e| panic!("{}: {e}", s.name));
                try_generate(&s.disjoint_variant(seed))
                    .unwrap_or_else(|e| panic!("{} (disjoint): {e}", s.name));
            }
        }
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(names.len(), 6);
        for n in names {
            assert!(find(n).is_some());
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn envelope_check_reports_breaches() {
        let env = Envelope {
            min_commit_rate: 0.5,
            max_p95_virtual: 100,
            min_compensations: 2,
        };
        let mut m = Metrics::new();
        m.committed = 2;
        m.violations = 1;
        m.latencies = vec![50, 500];
        let breaches = env.check(&m, 10, true);
        assert_eq!(breaches.len(), 4, "{breaches:?}");
        // Wall-clock mode skips the latency ceiling.
        assert_eq!(env.check(&m, 10, false).len(), 3);
        // A passing run reports nothing.
        let mut ok = Metrics::new();
        ok.committed = 8;
        ok.compensations = 3;
        ok.latencies = vec![10, 20];
        assert!(env.check(&ok, 10, true).is_empty());
    }

    #[test]
    fn disjoint_variant_partitions_every_scenario() {
        use txproc_core::domains::DomainPartition;
        for s in registry() {
            let w = try_generate(&s.disjoint_variant(3)).unwrap();
            let part = DomainPartition::partition(&w.spec);
            assert_eq!(
                part.domain_count(),
                s.config.processes,
                "{}: disjoint variant must isolate every process",
                s.name
            );
        }
    }
}
