//! Deterministic discrete-event simulation primitives: virtual time and an
//! event queue with stable tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual simulation time, in abstract units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Advances by `d` units.
    pub fn after(self, d: u64) -> SimTime {
        SimTime(self.0 + d)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A deterministic event queue: events fire in time order; ties break by
/// insertion order (FIFO), keeping runs reproducible.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
}

/// Wrapper that never compares the payload (only time and sequence do).
#[derive(Debug, Clone)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time, seq, EventSlot(event))));
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse((t, _, EventSlot(e)))| (t, e))
    }

    /// Peeks at the next event time.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5), "b");
        q.schedule(SimTime(1), "a");
        q.schedule(SimTime(9), "c");
        assert_eq!(q.pop(), Some((SimTime(1), "a")));
        assert_eq!(q.pop(), Some((SimTime(5), "b")));
        assert_eq!(q.pop(), Some((SimTime(9), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(3), 1);
        q.schedule(SimTime(3), 2);
        q.schedule(SimTime(3), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn next_time_peeks() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.schedule(SimTime(7), ());
        assert_eq!(q.next_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn sim_time_arithmetic() {
        assert_eq!(SimTime::ZERO.after(5), SimTime(5));
        assert_eq!(SimTime(3).after(4), SimTime(7));
        assert_eq!(SimTime(3).to_string(), "t3");
    }
}
