//! Property tests for the workload generator: structural invariants hold
//! under arbitrary configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use txproc_core::flex::FlexAnalysis;
use txproc_sim::workload::{generate, zipf_sample, WorkloadConfig};

fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        0u64..500,
        1usize..10,
        (1usize..3, 1usize..3),
        0.0f64..1.0,
        1usize..4,
        1usize..12,
        1usize..5,
        0.0f64..1.0,
    )
        .prop_map(
            |(seed, processes, prefix, alt, depth, services, subsystems, density)| WorkloadConfig {
                seed,
                processes,
                prefix_len: (prefix.0, prefix.0 + prefix.1),
                alternative_probability: alt,
                max_depth: depth,
                services_per_kind: services,
                subsystems,
                conflict_density: density,
                ..WorkloadConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated process has guaranteed termination, every service is
    /// deployed, and the declared conflict matrix covers the physical
    /// conflicts.
    #[test]
    fn generated_workloads_are_well_formed(config in config_strategy()) {
        let w = generate(&config);
        prop_assert_eq!(w.spec.process_count(), config.processes);
        for p in w.spec.processes() {
            let analysis = FlexAnalysis::analyze(p, &w.spec.catalog);
            prop_assert!(
                analysis.has_guaranteed_termination(),
                "process {} lacks guaranteed termination",
                p.name
            );
            for (id, _) in p.iter() {
                prop_assert!(w.deployment.site(p.service(id)).is_some());
            }
        }
        let missing = w.deployment.validate_conflicts(&w.spec.catalog, &w.spec.conflicts);
        prop_assert!(missing.is_empty(), "undeclared conflicts: {missing:?}");
        for sid in w.deployment.subsystems() {
            prop_assert!((sid.0 as usize) < config.subsystems);
        }
    }

    /// Generation is a pure function of the configuration.
    #[test]
    fn generation_is_deterministic(config in config_strategy()) {
        let w1 = generate(&config);
        let w2 = generate(&config);
        let d1: Vec<String> = w1.spec.processes().map(|p| format!("{p:?}")).collect();
        let d2: Vec<String> = w2.spec.processes().map(|p| format!("{p:?}")).collect();
        prop_assert_eq!(d1, d2);
        let s1: Vec<_> = w1.deployment.services().map(|(s, site)| (s, site.clone())).collect();
        let s2: Vec<_> = w2.deployment.services().map(|(s, site)| (s, site.clone())).collect();
        prop_assert_eq!(s1, s2);
    }

    /// The Zipf sampler's empirical rank frequencies track the theoretical
    /// law `P(r) ∝ 1/(r+1)^s` within tolerance, across seeds, pool sizes
    /// and skews.
    #[test]
    fn zipf_empirical_matches_law(
        seed in 0u64..10_000,
        n in 2usize..24,
        s in 0.2f64..2.5,
    ) {
        const DRAWS: usize = 30_000;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n];
        for _ in 0..DRAWS {
            counts[zipf_sample(&mut rng, n, s)] += 1;
        }
        let total: f64 = (0..n).map(|r| ((r + 1) as f64).powf(-s)).sum();
        for (r, &c) in counts.iter().enumerate() {
            let expected = ((r + 1) as f64).powf(-s) / total * DRAWS as f64;
            // Binomial std dev ≈ sqrt(expected); allow 6 sigma plus an
            // absolute slack for tiny tail probabilities.
            let slack = 6.0 * expected.sqrt() + 25.0;
            prop_assert!(
                (c as f64 - expected).abs() <= slack,
                "rank {r}: observed {c}, expected {expected:.1} ± {slack:.1} (n={n}, s={s})"
            );
        }
        // Skew really skews: rank 0 must strictly dominate the last rank.
        prop_assert!(counts[0] > counts[n - 1]);
    }

    /// `s = 0` consumes the RNG exactly like the uniform generator: the
    /// streams stay bit-identical draw after draw.
    #[test]
    fn zipf_zero_is_uniform_bit_identical(seed in 0u64..10_000, n in 1usize..64) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..256 {
            prop_assert_eq!(zipf_sample(&mut a, n, 0.0), b.gen_range(0..n));
        }
        // And the generators themselves are left in identical states.
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }
}
