//! Property tests for the metrics aggregation invariants: histogram mass =
//! sample count, quantile monotonicity (p50 ≤ p95 ≤ max), worker time
//! accounting (busy + idle ≤ workers × wall), and merge additivity across
//! per-worker and per-shard partitions.

use proptest::prelude::*;
use txproc_sim::metrics::{Metrics, RuntimeMetrics, ShardMetrics, SCHED_DELAY_BUCKETS};

proptest! {
    #[test]
    fn histogram_mass_equals_sample_count(samples in proptest::collection::vec(0u64..=u64::MAX, 0..200)) {
        let mut rt = RuntimeMetrics::new("events", 4);
        for ns in &samples {
            rt.record_delay_ns(*ns);
        }
        prop_assert_eq!(rt.sched_delay_ns.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(rt.sched_delay_samples, samples.len() as u64);
        prop_assert!(rt.invariant_violations(None).is_empty(),
            "violations: {:?}", rt.invariant_violations(None));
    }

    #[test]
    fn delay_quantiles_are_monotone(samples in proptest::collection::vec(0u64..1u64 << 40, 1..200)) {
        let mut rt = RuntimeMetrics::new("events", 1);
        for ns in &samples {
            rt.record_delay_ns(*ns);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let resolved: Vec<u64> = qs
            .iter()
            .map(|&q| rt.delay_percentile_ns(q).expect("non-empty histogram"))
            .collect();
        for w in resolved.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", resolved);
        }
        let max = rt.delay_max_ns().unwrap();
        prop_assert!(*resolved.last().unwrap() <= max);
        // The resolved max is the true max at log2-bucket resolution: within
        // one power of two above the largest sample.
        let true_max = *samples.iter().max().unwrap();
        prop_assert!(max >= true_max.min(1u64 << (SCHED_DELAY_BUCKETS as u32)),
            "max edge {} below true max {}", max, true_max);
    }

    #[test]
    fn merge_preserves_mass_and_monotone_quantiles(
        a in proptest::collection::vec(0u64..1u64 << 30, 0..100),
        b in proptest::collection::vec(0u64..1u64 << 30, 0..100),
    ) {
        let mut ra = RuntimeMetrics::new("events", 2);
        let mut rb = RuntimeMetrics::new("events", 3);
        for ns in &a { ra.record_delay_ns(*ns); }
        for ns in &b { rb.record_delay_ns(*ns); }
        ra.merge(&rb);
        prop_assert_eq!(ra.sched_delay_samples, (a.len() + b.len()) as u64);
        prop_assert_eq!(ra.sched_delay_ns.iter().sum::<u64>(), ra.sched_delay_samples);
        prop_assert!(ra.invariant_violations(None).is_empty());
    }

    #[test]
    fn worker_time_accounting_holds_within_wall_budget(
        workers in 1u64..16,
        wall_ns in 1u64..1u64 << 40,
        busy_frac in 0.0f64..1.0,
        idle_frac in 0.0f64..1.0,
    ) {
        // Partition each worker's wall into busy/idle/untimed; the recorded
        // busy+idle can never exceed workers × wall.
        let split = busy_frac.min(idle_frac);
        let busy = (wall_ns as f64 * split) as u64;
        let idle = (wall_ns as f64 * (busy_frac.max(idle_frac) - split)) as u64;
        let mut rt = RuntimeMetrics::new("events", workers);
        rt.worker_busy_ns = busy * workers;
        rt.worker_idle_ns = idle * workers;
        prop_assert!(rt.invariant_violations(Some(wall_ns)).is_empty(),
            "violations: {:?}", rt.invariant_violations(Some(wall_ns)));
        // And the check actually fires when accounting is broken.
        let mut broken = rt.clone();
        broken.worker_busy_ns = workers * wall_ns * 2 + 10_000_000;
        prop_assert!(!broken.invariant_violations(Some(wall_ns)).is_empty());
    }

    #[test]
    fn shard_merge_totals_are_additive(
        shards_a in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000), 0..8),
        shards_b in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000), 0..8),
    ) {
        let build = |specs: &[(u64, u64, u64, u64)], base: u32| Metrics {
            shards: specs
                .iter()
                .enumerate()
                .map(|(i, &(wait, hold, wake, spurious))| ShardMetrics {
                    shard: base + i as u32,
                    lock_wait_ns: wait,
                    lock_hold_ns: hold,
                    wakeups: wake,
                    spurious_wakeups: spurious,
                    ..ShardMetrics::default()
                })
                .collect(),
            ..Metrics::new()
        };
        let mut a = build(&shards_a, 0);
        let b = build(&shards_b, shards_a.len() as u32);
        let expect_wait = a.lock_wait_total_ns() + b.lock_wait_total_ns();
        let expect_hold = a.lock_hold_total_ns() + b.lock_hold_total_ns();
        let expect_wake = a.wakeups_total() + b.wakeups_total();
        let expect_spurious = a.spurious_wakeups_total() + b.spurious_wakeups_total();
        a.merge(&b);
        prop_assert_eq!(a.shards.len(), shards_a.len() + shards_b.len());
        prop_assert_eq!(a.lock_wait_total_ns(), expect_wait);
        prop_assert_eq!(a.lock_hold_total_ns(), expect_hold);
        prop_assert_eq!(a.wakeups_total(), expect_wake);
        prop_assert_eq!(a.spurious_wakeups_total(), expect_spurious);
    }
}
